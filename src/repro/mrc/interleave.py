"""GPU access-stream interleaving for miss-rate-curve collection.

The LLC does not see one thread's references in program order: it sees
the merge of thousands of concurrent warps.  Following the modelling
approach of Nugteren et al. [49], the collector reconstructs a plausible
LLC-side ordering from a functional trace:

* warps of one CTA issue round-robin (they progress in lockstep through
  the same kernel code);
* a window of concurrently resident CTAs — ``ctas_per_sm`` on each of
  ``num_virtual_sms`` virtual SMs — interleaves round-robin;
* each virtual SM's references are filtered through a functional model of
  its private L1 before entering the LLC stream.

The miss-rate curve is a per-workload artifact, so the interleaving uses
a fixed *reference* concurrency rather than any particular system size;
the default (16 virtual SMs) sits between the paper's scale models.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.exceptions import TraceError
from repro.trace.kernel import KernelTrace, WorkloadTrace


def interleave_cta(warp_lines: List[np.ndarray]) -> np.ndarray:
    """Round-robin merge of one CTA's warp streams (unequal lengths ok)."""
    if not warp_lines:
        raise TraceError("cannot interleave an empty CTA")
    lengths = [len(w) for w in warp_lines]
    width = max(lengths)
    if width == 0:
        return np.empty(0, dtype=np.int64)
    if len(set(lengths)) == 1:
        stacked = np.stack(warp_lines)
        return stacked.T.reshape(-1)
    merged = np.full((width, len(warp_lines)), -1, dtype=np.int64)
    for i, lines in enumerate(warp_lines):
        merged[: len(lines), i] = lines
    flat = merged.reshape(-1)  # row-major: slot 0 of every warp, then slot 1...
    return flat[flat >= 0]


class StreamStats:
    """Accumulates trace totals during the single interleaving pass."""

    def __init__(self) -> None:
        self.warp_instructions = 0
        self.accesses = 0
        self.ctas = 0

    def thread_instructions(self, threads_per_warp: int = 32) -> int:
        return self.warp_instructions * threads_per_warp


def iter_interleaved(
    workload: WorkloadTrace,
    num_virtual_sms: int = 16,
    ctas_per_sm: int = 6,
    stats: "StreamStats" = None,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(virtual_sm, lines_chunk)`` in interleaved global order.

    CTAs are assigned to virtual SMs round-robin (mirroring the dispatch
    policy) in windows of ``num_virtual_sms * ctas_per_sm`` concurrent
    CTAs; within a window, CTA streams interleave in fine-grained chunks
    so the LLC sees their references mixed, as it would in hardware.
    """
    if num_virtual_sms < 1 or ctas_per_sm < 1:
        raise TraceError("need at least one virtual SM and one CTA slot")
    window_size = num_virtual_sms * ctas_per_sm
    chunk = 32  # references per CTA per interleave round
    for kernel in workload.kernels:
        for start in range(0, kernel.num_ctas, window_size):
            window = []
            for cta_id in range(start, min(start + window_size, kernel.num_ctas)):
                cta = kernel.build_cta(cta_id)
                if stats is not None:
                    stats.warp_instructions += cta.warp_instructions
                    stats.accesses += cta.num_accesses
                    stats.ctas += 1
                lines = interleave_cta([
                    np.asarray(w.lines, dtype=np.int64) for w in cta.warps
                ])
                window.append((cta_id % num_virtual_sms, lines))
            offset = 0
            remaining = True
            while remaining:
                remaining = False
                for vsm, lines in window:
                    piece = lines[offset : offset + chunk]
                    if len(piece):
                        remaining = True
                        yield vsm, piece
                offset += chunk

"""Set-associativity correction for stack-distance miss-rate curves.

Stack distances model a *fully associative* LRU cache.  Real LLC slices
are set-associative (64-way in Table I), so the classical correction of
Smith (and Hill's "For most caches..." analysis) is provided: a reference
with stack distance ``d`` hits in an ``A``-way, ``S``-set cache iff fewer
than ``A`` of the ``d`` distinct intervening lines map to its own set —
binomially distributed with ``p = 1/S`` under uniform index hashing:

    P(hit | d) = P[ Binomial(d, 1/S) <= A - 1 ]

With the paper's 64-way slices the correction is tiny (which is why the
collector's fully-associative default is sound); this module makes that
claim checkable and supports low-associativity ablations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

import numpy as np
from scipy import stats

from repro.exceptions import PredictionError


def hit_probability(distance: int, num_sets: int, assoc: int) -> float:
    """P(hit) for one reference with the given stack distance."""
    if num_sets < 1 or assoc < 1:
        raise PredictionError("num_sets and assoc must be >= 1")
    if distance < 0:
        return 0.0  # cold reference
    if distance < assoc:
        return 1.0  # fits even if every intervening line shares the set
    return float(stats.binom.cdf(assoc - 1, distance, 1.0 / num_sets))


def set_associative_misses(
    histogram: Mapping[int, int],
    cold_misses: int,
    num_sets: int,
    assoc: int,
) -> float:
    """Expected misses of an (S, A) cache given a stack-distance histogram.

    ``histogram`` maps stack distance to reference count (cold references
    excluded), as produced by
    :class:`repro.mrc.stack_distance.StackDistanceProfiler`.
    """
    if cold_misses < 0:
        raise PredictionError(f"cold_misses must be >= 0, got {cold_misses}")
    expected = float(cold_misses)
    for distance, count in histogram.items():
        expected += count * (1.0 - hit_probability(distance, num_sets, assoc))
    return expected


def associativity_correction_curve(
    histogram: Mapping[int, int],
    cold_misses: int,
    capacities_lines: Iterable[int],
    assoc: int,
) -> Dict[int, Tuple[float, float]]:
    """(fully-associative, set-associative) miss counts per capacity.

    Capacity ``C`` lines with associativity ``A`` implies ``C / A`` sets;
    capacities that cannot host one full set fall back to a single set.
    """
    out: Dict[int, Tuple[float, float]] = {}
    for capacity in capacities_lines:
        if capacity < 1:
            raise PredictionError(f"capacity must be >= 1, got {capacity}")
        fully = float(cold_misses) + sum(
            count for d, count in histogram.items() if d >= capacity
        )
        sets = max(1, capacity // assoc)
        seta = set_associative_misses(histogram, cold_misses, sets, min(assoc, capacity))
        out[capacity] = (fully, seta)
    return out

"""Cliff detection and region analysis on miss-rate curves (Section V-C).

The prediction model splits the capacity axis into three regions:

* **pre-cliff** — the miss rate evolves at a steady pace;
* **cliff** — the miss rate drops by more than
  :data:`CLIFF_DROP_THRESHOLD` when doubling the cache (the working set
  starts fitting);
* **post-cliff** — mostly cold misses, flat again.

The paper observes at most one cliff for its workloads and system setup
(a single shared cache level); this analysis mirrors that by reporting
the *first* qualifying drop and treating everything beyond it as
post-cliff.  Multi-cliff extension is future work in the paper and is
left detectable here via :meth:`CliffAnalysis.all_drops`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.exceptions import PredictionError
from repro.mrc.curve import MissRateCurve

#: "the miss rate reduces by more than 2x when doubling cache size"
CLIFF_DROP_THRESHOLD = 2.0

#: MPKI below this is considered effectively zero (all-cold region); a
#: drop into this region always qualifies as a cliff.
NEGLIGIBLE_MPKI = 0.05


class Region(enum.Enum):
    PRE_CLIFF = "pre-cliff"
    CLIFF = "cliff"
    POST_CLIFF = "post-cliff"


@dataclass(frozen=True)
class CliffAnalysis:
    """Result of region analysis over one miss-rate curve."""

    curve: MissRateCurve
    cliff_step: Optional[int]  # drop between capacities [i] and [i+1]
    drop_ratios: Tuple[float, ...]

    @property
    def has_cliff(self) -> bool:
        return self.cliff_step is not None

    @property
    def cliff_capacities(self) -> Optional[Tuple[int, int]]:
        """(last pre-cliff capacity, first post-cliff capacity) in bytes."""
        if self.cliff_step is None:
            return None
        caps = self.curve.capacities_bytes
        return caps[self.cliff_step], caps[self.cliff_step + 1]

    def region_of(self, capacity_bytes: int) -> Region:
        """Region of a sampled capacity point."""
        caps = self.curve.capacities_bytes
        if capacity_bytes not in caps:
            raise PredictionError(
                f"{capacity_bytes} is not a sampled capacity: {caps}"
            )
        if self.cliff_step is None:
            return Region.PRE_CLIFF
        index = caps.index(capacity_bytes)
        if index <= self.cliff_step:
            return Region.PRE_CLIFF
        if index == self.cliff_step + 1:
            return Region.CLIFF
        return Region.POST_CLIFF

    def all_drops(self, threshold: float = CLIFF_DROP_THRESHOLD) -> List[int]:
        """Indices of every step whose drop exceeds the threshold."""
        return [
            i for i, ratio in enumerate(self.drop_ratios) if ratio > threshold
        ]


def analyze_regions(
    curve: MissRateCurve, threshold: float = CLIFF_DROP_THRESHOLD
) -> CliffAnalysis:
    """Locate the (first) cliff in a miss-rate curve, if any.

    A step qualifies when MPKI shrinks by more than ``threshold`` while the
    pre-drop MPKI is non-negligible — a drop from 0.02 to 0.005 is noise,
    not a cliff.
    """
    if threshold <= 1.0:
        raise PredictionError(f"threshold must exceed 1.0, got {threshold}")
    drops = curve.drop_ratios()
    cliff_step = None
    for i, ratio in enumerate(drops):
        if curve.mpki[i] <= NEGLIGIBLE_MPKI:
            continue
        if ratio > threshold:
            cliff_step = i
            break
    return CliffAnalysis(
        curve=curve, cliff_step=cliff_step, drop_ratios=tuple(drops)
    )

"""The miss-rate-curve data type."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import PredictionError
from repro.units import MB


@dataclass(frozen=True)
class MissRateCurve:
    """MPKI as a function of LLC capacity (Figure 2 of the paper).

    ``capacities_bytes`` are nominal (paper-scale) LLC capacities in
    ascending order; ``mpki[i]`` is the number of LLC misses per thousand
    thread instructions at that capacity.  ``miss_ratio`` (misses per LLC
    access) is kept for diagnostics.
    """

    workload: str
    capacities_bytes: Tuple[int, ...]
    mpki: Tuple[float, ...]
    miss_ratio: Tuple[float, ...] = ()
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.capacities_bytes) != len(self.mpki):
            raise PredictionError("capacities and mpki must have equal length")
        if len(self.capacities_bytes) < 2:
            raise PredictionError("a miss rate curve needs at least two points")
        if any(
            b <= a
            for a, b in zip(self.capacities_bytes, self.capacities_bytes[1:])
        ):
            raise PredictionError(
                f"capacities must be strictly increasing: {self.capacities_bytes}"
            )
        if any(m < 0 for m in self.mpki):
            raise PredictionError(f"MPKI values must be non-negative: {self.mpki}")
        if self.miss_ratio and len(self.miss_ratio) != len(self.mpki):
            raise PredictionError(
                f"{self.workload}: miss_ratio has {len(self.miss_ratio)} "
                f"entries for {len(self.mpki)} curve points; diagnostics "
                "must align with the sampled capacities"
            )

    def __len__(self) -> int:
        return len(self.capacities_bytes)

    @property
    def capacities_mb(self) -> Tuple[float, ...]:
        return tuple(c / MB for c in self.capacities_bytes)

    def mpki_at(self, capacity_bytes: int) -> float:
        """MPKI at an exact capacity point (must be one of the samples)."""
        for cap, value in zip(self.capacities_bytes, self.mpki):
            if cap == capacity_bytes:
                return value
        raise PredictionError(
            f"{self.workload}: no MPKI sample at {capacity_bytes} bytes; "
            f"sampled capacities: {self.capacities_bytes}"
        )

    def drop_ratios(self) -> List[float]:
        """``mpki[i] / mpki[i+1]`` per capacity step (>= 1 means improving).

        A step whose next MPKI is ~zero yields ``inf``; the cliff detector
        treats that as the sharpest possible drop.
        """
        ratios = []
        for a, b in zip(self.mpki, self.mpki[1:]):
            if b <= 1e-12:
                ratios.append(float("inf") if a > 1e-12 else 1.0)
            else:
                ratios.append(a / b)
        return ratios

    def as_rows(self) -> List[Tuple[float, float]]:
        """(capacity_mb, mpki) rows for table rendering."""
        return list(zip(self.capacities_mb, self.mpki))


def curve_from_samples(
    workload: str,
    samples: Sequence[Tuple[int, float]],
    miss_ratio: Sequence[float] = (),
) -> MissRateCurve:
    """Build a curve from unsorted ``(capacity_bytes, mpki)`` samples.

    ``miss_ratio[i]`` is the diagnostic miss ratio measured at
    ``samples[i]`` and is reordered *with* its sample: sorting the
    samples while passing the ratios through in caller order would
    silently misalign the diagnostics whenever the caller's samples
    were not already capacity-sorted.
    """
    if miss_ratio and len(miss_ratio) != len(samples):
        raise PredictionError(
            f"{workload}: got {len(miss_ratio)} miss_ratio values for "
            f"{len(samples)} samples"
        )
    if miss_ratio:
        ordered = sorted(zip(samples, miss_ratio))
        ratios = tuple(r for __, r in ordered)
        pairs = [pair for pair, __ in ordered]
    else:
        ratios = ()
        pairs = sorted(samples)
    return MissRateCurve(
        workload=workload,
        capacities_bytes=tuple(c for c, __ in pairs),
        mpki=tuple(m for __, m in pairs),
        miss_ratio=ratios,
    )

"""StatStack-flavoured statistical miss-ratio estimation.

Eklov and Hagersten's StatStack [23] estimates stack distances from plain
*reuse distances* (the number of references — not unique lines — between
two accesses to the same line), which are far cheaper to collect.  The
key identity for a stationary reference stream: the expected number of
distinct lines in a window of r references is

    E[unique(r)] = sum_{d=1..r} P(RD > d)

because the reference d positions before the window end is the *last*
occurrence of its line within the window iff its forward reuse distance
exceeds d.  Inverting the (monotone) mapping ``r -> E[unique(r)]`` turns
a cache capacity into a reuse-distance threshold, and the miss ratio at
capacity C is simply ``P(RD > r*(C))`` plus cold misses.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.exceptions import PredictionError


class ReuseDistanceSampler:
    """Collects forward reuse distances in one cheap pass."""

    def __init__(self) -> None:
        self._last_pos: Dict[int, int] = {}
        self._pos = 0
        self.reuse_distances: List[int] = []
        self.cold_misses = 0

    def access(self, line: int) -> None:
        self._pos += 1
        last = self._last_pos.get(line)
        if last is None:
            self.cold_misses += 1
        else:
            self.reuse_distances.append(self._pos - last - 1)
        self._last_pos[line] = self._pos

    def consume(self, lines: Iterable[int]) -> None:
        for line in lines:
            self.access(line)

    @property
    def accesses(self) -> int:
        return self._pos


def expected_unique(reuse_distances: np.ndarray, max_window: int) -> np.ndarray:
    """``E[unique(r)]`` for r = 0..max_window from a reuse-distance sample."""
    if max_window < 0:
        raise PredictionError(f"max_window must be >= 0, got {max_window}")
    n = len(reuse_distances)
    if n == 0:
        return np.zeros(max_window + 1)
    clipped = np.minimum(reuse_distances, max_window)
    counts = np.bincount(clipped, minlength=max_window + 1)
    # P(RD > d) for d = 0..max_window (sample CCDF).
    ccdf = 1.0 - np.cumsum(counts) / n
    ccdf = np.clip(ccdf, 0.0, 1.0)
    # E[unique(r)] = sum_{d=1..r} P(RD > d-1)  (distinct-last-occurrence
    # argument, see module docstring; P(RD >= d) = P(RD > d-1)).
    unique = np.concatenate(([0.0], np.cumsum(ccdf[:max_window])))
    return unique


def statstack_miss_ratios(
    sampler: ReuseDistanceSampler,
    capacities_lines: Sequence[int],
    max_window: int = 1 << 20,
) -> List[float]:
    """Estimated miss ratios (misses per access) at the given capacities."""
    if sampler.accesses == 0:
        raise PredictionError("no accesses sampled")
    rds = np.asarray(sampler.reuse_distances, dtype=np.int64)
    if len(rds):
        max_window = int(min(max_window, max(int(rds.max()) + 1, 2)))
    else:
        max_window = 2
    unique = expected_unique(rds, max_window)
    n = len(rds)
    cold = sampler.cold_misses
    total = sampler.accesses
    out = []
    for capacity in capacities_lines:
        if capacity < 1:
            raise PredictionError(f"capacity must be >= 1, got {capacity}")
        # Smallest window whose expected unique content reaches the capacity.
        idx = int(np.searchsorted(unique, capacity, side="left"))
        if idx >= len(unique):
            conflict = 0  # cache larger than any working set seen
        else:
            conflict = int(np.count_nonzero(rds > idx))
        out.append((conflict + cold) / total)
    return out

"""Multi-chiplet (MCM) GPU model tests."""

import pytest

from dataclasses import replace

from repro.gpu.chiplet import McmMemory, McmSimulator, simulate_mcm
from repro.gpu.config import GPUConfig, McmConfig
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace
from repro.units import GHZ, MB


def tiny_mcm(num_chiplets=2) -> McmConfig:
    chiplet = GPUConfig(
        num_sms=2,
        sm_clock_hz=1.0 * GHZ,
        llc_size=1 * MB,
        llc_slices=2,
        num_mcs=1,
        capacity_scale=1.0,
        latency_jitter=0.0,
        name="tiny-chiplet",
    )
    return McmConfig(
        num_chiplets=num_chiplets,
        chiplet=chiplet,
        page_size=4096,
        name="tiny-mcm",
    )


def workload(num_ctas=8, accesses=6, stride=1, compute=4):
    def build(cta_id):
        warps = []
        for w in range(2):
            base = (cta_id * 2 + w) * accesses * stride
            lines = [base + i * stride for i in range(accesses)]
            warps.append(WarpTrace([compute] * accesses, lines))
        return CTATrace(cta_id, warps)

    return WorkloadTrace("mcm-wl", [KernelTrace("k", num_ctas, 64, build)])


class TestFirstTouchPlacement:
    def test_first_toucher_becomes_home(self):
        mem = McmMemory(tiny_mcm())
        mem.access(0, 100, 0.0)  # SM 0 -> chiplet 0
        assert mem.page_home[100 // 32] == 0
        mem.access(2, 5000, 0.0)  # SM 2 -> chiplet 1
        assert mem.page_home[5000 // 32] == 1

    def test_remote_access_counted_and_slower(self):
        mem = McmMemory(tiny_mcm())
        t_local, __ = mem.access(0, 100, 0.0)
        # Same page from chiplet 1, long after the line left the L1s:
        t_remote, __ = mem.access(2, 101, 50000.0)
        assert mem.remote_accesses == 1
        assert mem.local_accesses == 1
        # Remote crosses two inter-chiplet links and three NoCs.
        assert (t_remote - 50000.0) > (t_local - 0.0)

    def test_home_is_sticky(self):
        mem = McmMemory(tiny_mcm())
        mem.access(0, 100, 0.0)
        mem.access(2, 100, 10.0)
        assert mem.home_of(100, toucher=1) == 0


class TestMcmSimulator:
    def test_runs_and_reports_chiplets(self):
        result = simulate_mcm(tiny_mcm(), workload())
        assert result.num_sms == 4  # 2 chiplets x 2 SMs
        assert result.extra["num_chiplets"] == 2.0
        assert 0.0 <= result.extra["remote_fraction"] <= 1.0
        assert result.ipc > 0

    def test_deterministic(self):
        a = simulate_mcm(tiny_mcm(), workload())
        b = simulate_mcm(tiny_mcm(), workload())
        assert a.cycles == b.cycles

    def test_private_data_stays_local(self):
        """CTA-private streams are first-touched by their own chiplet, so
        with page-aligned strides remote traffic stays low."""
        wl = workload(num_ctas=8, accesses=32, stride=32)  # page-strided
        result = simulate_mcm(tiny_mcm(), wl)
        assert result.extra["remote_fraction"] < 0.2

    def test_shared_data_goes_remote(self):
        def build(cta_id):
            lines = list(range(64))  # everyone reads the same pages
            return CTATrace(cta_id, [WarpTrace([2] * 64, lines)])

        wl = WorkloadTrace("shared", [KernelTrace("k", 8, 32, build)])
        result = simulate_mcm(tiny_mcm(), wl)
        assert result.extra["remote_fraction"] > 0.2

    def test_warm_lines_respects_first_touch(self):
        mem = McmMemory(tiny_mcm())
        mem.warm_lines(0, 64)  # nothing placed yet: no-op
        assert mem.page_home == {}
        mem.access(0, 0, 0.0)
        mem.warm_lines(0, 32)
        sub = mem.subsystems[0]
        assert any(s.resident_lines() for s in sub.llc_slices)

    def test_aggregate_stats_sum_chiplets(self):
        sim = McmSimulator(tiny_mcm())
        result = sim.run(workload())
        mem = sim.memory
        assert result.l1_misses == mem.l1_misses
        assert mem.llc_hits == sum(s.llc_hits for s in mem.subsystems)


class TestMcmScaling:
    def test_more_chiplets_faster_on_big_parallel_work(self):
        wl2 = workload(num_ctas=64, accesses=8, stride=32)
        r2 = simulate_mcm(tiny_mcm(2), wl2)
        wl4 = workload(num_ctas=64, accesses=8, stride=32)
        r4 = simulate_mcm(tiny_mcm(4), wl4)
        assert r4.cycles < r2.cycles

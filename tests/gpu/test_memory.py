"""Memory-subsystem tests: access path, merging, MSHRs, statistics."""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.memory import DRAM, L1_HIT, LLC_HIT, MERGED, MemorySubsystem


def small_config(**overrides) -> GPUConfig:
    defaults = dict(
        num_sms=2,
        llc_slices=2,
        num_mcs=1,
        capacity_scale=1.0,
        latency_jitter=0.0,
        name="test",
    )
    defaults.update(overrides)
    return GPUConfig(**defaults)


class TestAccessPath:
    def test_first_access_goes_to_dram(self):
        mem = MemorySubsystem(small_config())
        t, where = mem.access(0, 100, 0.0)
        assert where == DRAM
        assert t > 400  # at least L1 + NoC + LLC + DRAM latency
        assert mem.llc_misses == 1

    def test_l1_hit_after_fill(self):
        cfg = small_config()
        mem = MemorySubsystem(cfg)
        mem.access(0, 100, 0.0)
        t, where = mem.access(0, 100, 1000.0)
        assert where == L1_HIT
        assert t == 1000.0 + cfg.l1_hit_latency
        assert mem.l1_hits == 1

    def test_llc_hit_from_other_sm(self):
        mem = MemorySubsystem(small_config())
        mem.access(0, 100, 0.0)
        __, where = mem.access(1, 100, 5000.0)
        assert where == LLC_HIT
        assert mem.llc_hits == 1

    def test_in_flight_merge(self):
        mem = MemorySubsystem(small_config())
        t1, w1 = mem.access(0, 100, 0.0)
        # A second warp on the same SM misses L1 on the same line while the
        # primary is still in flight: it merges and completes with it.
        # First evict the L1 copy? No: the L1 fill happened functionally, so
        # force a different warp pattern: access a line that maps to the
        # same L1 set to evict, then re-access.
        t2, w2 = mem.access(0, 100, 1.0)
        assert w2 == L1_HIT  # functional fill makes it an L1 hit
        assert mem.merged == 0

    def test_merge_when_line_not_in_l1(self):
        # Use an L1 with a single set and assoc 6: seven distinct lines
        # evict the first, whose fill is still outstanding.
        cfg = small_config(l1_size=6 * 128, l1_assoc=6)
        mem = MemorySubsystem(cfg)
        assert cfg.l1_sets == 1
        t1, __ = mem.access(0, 0, 0.0)
        for line in range(1, 7):  # evicts line 0 from the tiny L1
            mem.access(0, line, 0.0)
        t2, where = mem.access(0, 0, 1.0)
        assert where == MERGED
        assert t2 == t1
        assert mem.merged == 1

    def test_completion_after_issue_time(self):
        mem = MemorySubsystem(small_config())
        for i, line in enumerate(range(0, 4000, 7)):
            t, __ = mem.access(i % 2, line, float(i))
            assert t > i

    def test_dram_latency_jitter_bounds(self):
        cfg = small_config(latency_jitter=0.3)
        mem = MemorySubsystem(cfg)
        lo = hi = None
        for i, line in enumerate(range(0, 100000, 97)):
            t, where = mem.access(0, line, 1e9 * (i + 1))  # huge gaps: no queueing
            if where != DRAM:
                continue
            lat = t - 1e9 * (i + 1)
            lo = lat if lo is None else min(lo, lat)
            hi = lat if hi is None else max(hi, lat)
        spread = hi - lo
        assert spread > 0  # jitter present
        # Total jitter span is bounded by 0.3*(llc+dram) latencies.
        assert spread <= 0.6 * (cfg.llc_latency + cfg.dram_latency) + 1e-6


class TestAddressMapping:
    def test_mapping_is_hashed_and_stable(self):
        mem = MemorySubsystem(small_config(llc_slices=2, num_mcs=1))
        assert mem.slice_for(123) == mem.slice_for(123)
        assert 0 <= mem.slice_for(123) < 2
        assert mem.mc_for(12345) == 0  # single controller

    def test_hashing_spreads_consecutive_lines(self):
        """Consecutive lines must not walk slices in lockstep order (the
        phase-locking pathology hashing exists to break)."""
        mem = MemorySubsystem(small_config(llc_slices=8))
        slices = [mem.slice_for(line) for line in range(64)]
        # Roughly balanced...
        counts = [slices.count(s) for s in range(8)]
        assert max(counts) <= 2 * (64 // 8)
        # ...but NOT the identity pattern 0,1,2,...
        assert slices[:8] != list(range(8))

    def test_slice_camping_serializes(self):
        """Concurrent accesses to one slice queue at the slice port."""
        cfg = small_config(llc_slices=2)
        mem = MemorySubsystem(cfg)
        target_slice = mem.slice_for(0)
        lines = [l for l in range(400) if mem.slice_for(l) == target_slice][:50]
        for line in lines:
            mem.access(1, line, 0.0)  # warm the LLC from another SM
        base = 100000.0
        completions = [mem.access(0, line, base)[0] for line in lines]
        # Port throughput is 1/cycle: the last completion is pushed out by
        # at least the queueing of its 49 predecessors.
        assert max(completions) - min(completions) >= 45.0


class TestStatistics:
    def test_stats_dict(self):
        mem = MemorySubsystem(small_config())
        mem.access(0, 1, 0.0)
        mem.access(0, 1, 500.0)
        stats = mem.stats()
        assert stats["l1_hits"] == 1
        assert stats["l1_misses"] == 1
        assert stats["llc_misses"] == 1
        assert stats["noc_bytes"] > 0
        assert stats["dram_bytes"] == 128

    def test_miss_rates(self):
        mem = MemorySubsystem(small_config())
        assert mem.llc_miss_rate() == 0.0
        mem.access(0, 1, 0.0)
        assert mem.llc_miss_rate() == 1.0
        assert mem.dram_accesses == 1

    def test_extra_stats(self):
        mem = MemorySubsystem(small_config())
        mem.access(0, 1, 0.0)
        extra = mem.extra_stats(1000.0)
        assert 0.0 <= extra["noc_utilization"] <= 1.0
        assert extra["l1_merged"] == 0.0

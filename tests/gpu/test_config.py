"""Configuration and proportional-scaling (Table I / III / V) tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.gpu.config import (
    DEFAULT_CAPACITY_SCALE,
    PAPER_SCALE_MODEL_SIZES,
    PAPER_SYSTEM_SIZES,
    PAPER_TARGET_SIZES,
    GPUConfig,
    McmConfig,
)
from repro.units import GBPS, GHZ, MB


class TestBaseline:
    def test_table3_values(self):
        cfg = GPUConfig.paper_baseline()
        assert cfg.num_sms == 128
        assert cfg.sm_clock_hz == 1.0 * GHZ
        assert cfg.warps_per_sm == 48
        assert cfg.threads_per_warp == 32
        assert cfg.max_threads_per_sm == 1536
        assert cfg.llc_size == 34 * MB
        assert cfg.l1_mshrs == 384
        assert cfg.l1_assoc == 6

    def test_aggregate_memory_bandwidth(self):
        cfg = GPUConfig.paper_baseline()
        assert cfg.dram_bandwidth_bps == pytest.approx(2320 * GBPS)
        assert cfg.num_mcs == 16
        assert cfg.mc_bandwidth_bps == pytest.approx(145 * GBPS)


class TestProportionalScaling:
    """Table I: shared resources scale with SM count, per-SM stays fixed."""

    @pytest.mark.parametrize("sms,llc_mb,slices,mcs", [
        (128, 34.0, 32, 16),
        (64, 17.0, 16, 8),
        (32, 8.5, 8, 4),
        (16, 4.25, 4, 2),
        (8, 2.125, 2, 1),
    ])
    def test_table1_rows(self, sms, llc_mb, slices, mcs):
        cfg = GPUConfig.paper_system(sms)
        assert cfg.llc_size == pytest.approx(llc_mb * MB)
        assert cfg.llc_slices == slices
        assert cfg.num_mcs == mcs
        # Per-MC bandwidth is constant (145 GB/s per Table I).
        assert cfg.mc_bandwidth_bps == pytest.approx(145 * GBPS)

    def test_noc_scales_proportionally(self):
        base = GPUConfig.paper_baseline()
        half = base.scaled(64)
        assert half.noc_bisection_bps == pytest.approx(base.noc_bisection_bps / 2)

    def test_per_sm_resources_unchanged(self):
        base = GPUConfig.paper_baseline()
        small = base.scaled(8)
        assert small.l1_size == base.l1_size
        assert small.warps_per_sm == base.warps_per_sm
        assert small.issue_width == base.issue_width
        assert small.max_threads_per_sm == base.max_threads_per_sm

    def test_scaling_is_composable(self):
        base = GPUConfig.paper_baseline()
        once = base.scaled(32)
        twice = base.scaled(64).scaled(32)
        assert once.llc_size == twice.llc_size
        assert once.num_mcs == twice.num_mcs

    def test_scale_factor(self):
        base = GPUConfig.paper_baseline()
        assert base.scaled(16).scale_factor_to(base) == pytest.approx(8.0)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUConfig.paper_baseline().scaled(0)
        with pytest.raises(ConfigurationError):
            GPUConfig.paper_system(100)  # not a paper size

    def test_paper_size_constants(self):
        assert PAPER_SYSTEM_SIZES == (8, 16, 32, 64, 128)
        assert PAPER_SCALE_MODEL_SIZES == (8, 16)
        assert PAPER_TARGET_SIZES == (32, 64, 128)


class TestDerivedQuantities:
    def test_effective_capacities_use_scale(self):
        cfg = GPUConfig.paper_baseline(capacity_scale=0.5)
        assert cfg.effective_llc_size == 17 * MB
        cfg2 = GPUConfig.paper_baseline(capacity_scale=1.0)
        assert cfg2.effective_llc_size == 34 * MB

    def test_default_capacity_scale(self):
        assert GPUConfig.paper_baseline().capacity_scale == DEFAULT_CAPACITY_SCALE

    def test_llc_sets_positive_everywhere(self):
        for sms in PAPER_SYSTEM_SIZES:
            cfg = GPUConfig.paper_system(sms)
            assert cfg.llc_sets_per_slice >= 1
            assert cfg.l1_sets >= 1

    def test_max_resident_ctas(self):
        cfg = GPUConfig.paper_baseline()
        assert cfg.max_resident_ctas(256) == 6
        assert cfg.max_resident_ctas(1024) == 1
        assert cfg.max_resident_ctas(128) == 12
        assert cfg.max_resident_ctas(4096) == 1  # clamped to at least one
        with pytest.raises(ConfigurationError):
            cfg.max_resident_ctas(0)

    def test_mc_bytes_per_cycle_includes_efficiency(self):
        cfg = GPUConfig.paper_baseline()
        expected = cfg.dram_efficiency * 145.0
        assert cfg.mc_bytes_per_cycle == pytest.approx(expected)

    def test_describe_row(self):
        row = GPUConfig.paper_system(8).describe()
        assert row["#SMs"] == "8"
        assert "2.125 MB" in row["LLC"]
        assert "1 MCs" in row["Main memory"]


class TestValidation:
    def test_bad_jitter(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(latency_jitter=1.5)

    def test_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(dram_efficiency=0.0)

    def test_bad_capacity_scale(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(capacity_scale=0.0)

    def test_threads_not_multiple_of_warp(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(max_threads_per_sm=1000)


class TestMcmConfig:
    def test_table5_values(self):
        cfg = McmConfig.paper_target()
        assert cfg.num_chiplets == 16
        assert cfg.chiplet.num_sms == 64
        assert cfg.total_sms == 1024
        assert cfg.chiplet.sm_clock_hz == pytest.approx(1.7 * GHZ)
        assert cfg.chiplet.llc_size == 18 * MB
        assert cfg.inter_chiplet_bw_per_chiplet_bps == pytest.approx(900 * GBPS)
        assert cfg.chiplet.dram_bandwidth_bps == pytest.approx(1200 * GBPS)

    def test_scaled_keeps_chiplet_fixed(self):
        base = McmConfig.paper_target()
        small = base.scaled(4)
        assert small.num_chiplets == 4
        assert small.chiplet == base.chiplet
        assert small.total_sms == 256

    def test_bisection_scales_with_chiplets(self):
        base = McmConfig.paper_target()
        assert base.scaled(4).inter_chiplet_bisection_bps == pytest.approx(
            base.inter_chiplet_bisection_bps / 4
        )

    def test_describe(self):
        desc = McmConfig.paper_target().describe()
        assert desc["#chiplets"] == "16"
        assert desc["#SMs/chiplet"] == "64"

    def test_invalid_chiplets(self):
        with pytest.raises(ConfigurationError):
            McmConfig.paper_target().scaled(0)

    def test_page_size_validation(self):
        with pytest.raises(ConfigurationError):
            McmConfig(page_size=64)

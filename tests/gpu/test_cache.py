"""Set-associative LRU cache tests, including property-based LRU checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.gpu.cache import SetAssocCache


class TestBasicBehavior:
    def test_first_access_misses_second_hits(self):
        c = SetAssocCache(num_sets=4, assoc=2)
        assert c.access(10) is False
        assert c.access(10) is True
        assert c.hits == 1 and c.misses == 1

    def test_lru_eviction_within_set(self):
        c = SetAssocCache(num_sets=1, assoc=2)
        c.access(1)
        c.access(2)
        c.access(1)  # 1 becomes MRU; LRU is 2
        c.access(3)  # evicts 2
        assert c.access(1) is True
        assert c.access(2) is False

    def test_sets_are_independent(self):
        c = SetAssocCache(num_sets=2, assoc=1)
        c.access(0)  # set 0
        c.access(1)  # set 1
        assert c.access(0) is True
        assert c.access(1) is True

    def test_non_power_of_two_sets(self):
        # The paper's slice geometry yields non-power-of-two set counts.
        c = SetAssocCache(num_sets=17, assoc=64)
        for line in range(17 * 64):
            c.access(line)
        assert c.resident_lines() == 17 * 64
        assert all(c.access(line) for line in range(17 * 64))

    def test_probe_does_not_mutate(self):
        c = SetAssocCache(num_sets=1, assoc=1)
        c.access(5)
        assert c.probe(5) is True
        assert c.probe(6) is False
        assert c.hits == 0 or c.hits == 0  # probe counted nothing
        assert c.accesses == 1

    def test_fill_and_invalidate(self):
        c = SetAssocCache(num_sets=1, assoc=1)
        assert c.fill(7) is None
        assert c.probe(7)
        victim = c.fill(9)
        assert victim == 7
        assert c.invalidate(9) is True
        assert c.invalidate(9) is False

    def test_miss_rate(self):
        c = SetAssocCache(num_sets=1, assoc=4)
        assert c.miss_rate() == 0.0
        c.access(1)
        c.access(1)
        assert c.miss_rate() == pytest.approx(0.5)

    def test_clear_and_reset_stats(self):
        c = SetAssocCache(num_sets=1, assoc=2)
        c.access(1)
        c.reset_stats()
        assert c.accesses == 0
        assert c.probe(1)  # contents survive reset_stats
        c.clear()
        assert not c.probe(1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SetAssocCache(0, 1)
        with pytest.raises(ConfigurationError):
            SetAssocCache(1, 0)


class TestCyclicSweep:
    """The LRU cliff mechanism underpinning super-linear scaling."""

    def test_sweep_larger_than_cache_never_hits(self):
        c = SetAssocCache(num_sets=8, assoc=8)  # 64 lines
        for __ in range(3):
            for line in range(128):
                c.access(line)
        assert c.hits == 0

    def test_sweep_fitting_hits_after_warmup(self):
        c = SetAssocCache(num_sets=8, assoc=8)
        for __ in range(3):
            for line in range(56):  # 7 lines/set < 8 ways
                c.access(line)
        assert c.misses == 56  # cold only
        assert c.hits == 2 * 56


class TestLRUProperty:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=300))
    def test_matches_reference_lru(self, stream):
        """The dict-based cache must agree with a straightforward
        list-based LRU reference model."""
        num_sets, assoc = 3, 4
        cache = SetAssocCache(num_sets, assoc)
        reference = [[] for __ in range(num_sets)]
        for line in stream:
            got = cache.access(line)
            ref_set = reference[line % num_sets]
            expected = line in ref_set
            if expected:
                ref_set.remove(line)
            elif len(ref_set) >= assoc:
                ref_set.pop(0)
            ref_set.append(line)
            assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
    def test_occupancy_bounded(self, stream):
        cache = SetAssocCache(4, 2)
        for line in stream:
            cache.access(line)
        assert cache.resident_lines() <= 8

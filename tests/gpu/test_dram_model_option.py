"""Integration tests for the banked-DRAM memory backend option."""

import pytest

from repro.exceptions import ConfigurationError
from repro.gpu import GPUConfig, simulate
from repro.gpu.memory import MemorySubsystem
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace


def config(model="banked", **overrides):
    defaults = dict(
        num_sms=2, llc_slices=2, num_mcs=2, capacity_scale=1.0,
        latency_jitter=0.0, dram_model=model, name="t",
    )
    defaults.update(overrides)
    return GPUConfig(**defaults)


def stream_workload(num_ctas=8, accesses=16):
    def build(cta_id):
        base = cta_id * accesses * 64
        lines = [base + i for i in range(accesses)]  # row-friendly stream
        return CTATrace(cta_id, [WarpTrace([4] * accesses, lines)])

    return WorkloadTrace("w", [KernelTrace("k", num_ctas, 32, build)])


class TestBankedOption:
    def test_invalid_model_rejected(self):
        with pytest.raises(ConfigurationError):
            config(model="hbm4")

    def test_simple_has_no_banked_mcs(self):
        assert MemorySubsystem(config(model="simple")).banked_mcs == []

    def test_banked_builds_one_per_controller(self):
        mem = MemorySubsystem(config(model="banked", num_mcs=3))
        assert len(mem.banked_mcs) == 3

    def test_banked_simulation_runs_and_differs(self):
        simple = simulate(config(model="simple"), stream_workload())
        banked = simulate(config(model="banked"), stream_workload())
        assert simple.thread_instructions == banked.thread_instructions
        assert simple.cycles != banked.cycles

    def test_banked_row_locality_observed(self):
        cfg = config(model="banked")
        mem = MemorySubsystem(cfg)
        # Sequential lines within one row: mostly row hits.
        for i, line in enumerate(range(16)):
            mem.access(0, line, float(i * 2000))
        hit_rates = [d.row_hit_rate for d in mem.banked_mcs if d.accesses]
        assert max(hit_rates) > 0.5

    def test_banked_deterministic(self):
        a = simulate(config(model="banked"), stream_workload())
        b = simulate(config(model="banked"), stream_workload())
        assert a.cycles == b.cycles

"""NoC topology model tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.gpu import GPUConfig, simulate
from repro.gpu.noc import build_noc_model
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace


class TestNocModel:
    def test_crossbar_is_identity(self):
        model = build_noc_model("crossbar", 160)
        assert model.bisection_derate == 1.0
        assert model.latency_factor == 1.0
        assert model.effective_bandwidth(1000.0) == 1000.0

    def test_mesh_derates_with_size(self):
        small = build_noc_model("mesh", 16)
        big = build_noc_model("mesh", 256)
        assert big.bisection_derate < small.bisection_derate
        assert big.latency_factor > small.latency_factor

    def test_ring_worse_than_mesh_at_scale(self):
        mesh = build_noc_model("mesh", 256)
        ring = build_noc_model("ring", 256)
        assert ring.bisection_derate < mesh.bisection_derate
        assert ring.latency_factor > mesh.latency_factor

    def test_tiny_networks_not_penalized(self):
        for topology in ("mesh", "ring"):
            model = build_noc_model(topology, 2)
            assert model.bisection_derate == 1.0
            assert model.latency_factor >= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_noc_model("torus", 16)
        with pytest.raises(ConfigurationError):
            build_noc_model("mesh", 0)


class TestTopologyInConfig:
    def test_default_is_crossbar(self):
        assert GPUConfig.paper_baseline().noc_topology == "crossbar"

    def test_invalid_topology_rejected(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(noc_topology="hypercube")

    def test_mesh_reduces_effective_bandwidth(self):
        xbar = GPUConfig(num_sms=64, llc_slices=16, num_mcs=8, name="x")
        mesh = GPUConfig(num_sms=64, llc_slices=16, num_mcs=8, name="m",
                         noc_topology="mesh")
        assert mesh.noc_bytes_per_cycle < xbar.noc_bytes_per_cycle
        assert mesh.effective_noc_latency > xbar.effective_noc_latency

    def test_mesh_simulation_slower_on_noc_bound_workload(self):
        def workload():
            def build(cta_id):
                lines = [cta_id * 64 + i for i in range(32)]
                return CTATrace(cta_id, [WarpTrace([1] * 32, lines)])
            return WorkloadTrace("w", [KernelTrace("k", 16, 32, build)])

        base = dict(num_sms=4, llc_slices=2, num_mcs=2, capacity_scale=1.0,
                    latency_jitter=0.0, name="t")
        xbar = simulate(GPUConfig(**base), workload())
        mesh = simulate(GPUConfig(noc_topology="mesh", **base), workload())
        assert mesh.cycles > xbar.cycles

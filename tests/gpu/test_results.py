"""SimulationResult record tests."""

import pytest

from repro.exceptions import SimulationError
from repro.gpu.results import SimulationResult


def result(**overrides):
    defaults = dict(
        workload="w", system="s-16sm", num_sms=16,
        cycles=1000.0, thread_instructions=64000, warp_instructions=2000,
        memory_accesses=500, memory_stall_fraction=0.4,
        l1_hits=300, l1_misses=200, llc_hits=120, llc_misses=80,
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestDerivedMetrics:
    def test_ipc(self):
        r = result()
        assert r.ipc == pytest.approx(64.0)
        assert r.ipc_per_sm == pytest.approx(4.0)

    def test_mpki(self):
        r = result()
        assert r.mpki == pytest.approx(1000.0 * 80 / 64000)

    def test_mpki_no_instructions(self):
        assert result(thread_instructions=0).mpki == 0.0

    def test_miss_rates(self):
        r = result()
        assert r.l1_miss_rate == pytest.approx(0.4)
        assert r.llc_miss_rate == pytest.approx(0.4)

    def test_miss_rates_empty(self):
        r = result(l1_hits=0, l1_misses=0, llc_hits=0, llc_misses=0)
        assert r.l1_miss_rate == 0.0
        assert r.llc_miss_rate == 0.0

    def test_summary_mentions_key_numbers(self):
        text = result().summary()
        assert "w" in text and "IPC=64.0" in text and "f_mem=0.400" in text

    def test_non_positive_cycles_rejected(self):
        with pytest.raises(SimulationError):
            result(cycles=0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            result().cycles = 5.0

"""Banked DRAM model tests."""

import pytest

from repro.exceptions import ConfigurationError
from repro.gpu.dram import BankedDram, DramBank


class TestDramBank:
    def test_row_hit_is_cheap(self):
        bank = DramBank("b", t_cas=20, t_ras=30, t_rp=30)
        first = bank.access(0.0, row=5)
        assert first == pytest.approx(80.0)  # precharge+activate+cas
        second = bank.access(first, row=5)
        assert second - first == pytest.approx(20.0)  # cas only
        assert bank.row_hits == 1 and bank.row_misses == 1

    def test_row_switch_pays_full_cost(self):
        bank = DramBank("b", 20, 30, 30)
        t1 = bank.access(0.0, row=1)
        t2 = bank.access(t1, row=2)
        assert t2 - t1 == pytest.approx(80.0)

    def test_bank_serializes(self):
        bank = DramBank("b", 20, 30, 30)
        bank.access(0.0, row=1)
        done = bank.access(0.0, row=1)  # queued behind the first
        assert done == pytest.approx(100.0)


class TestBankedDram:
    def make(self, **kw):
        defaults = dict(bytes_per_cycle=64.0, num_banks=4, row_bytes=512,
                        line_size=128)
        defaults.update(kw)
        return BankedDram(**defaults)

    def test_sequential_lines_hit_open_row(self):
        dram = self.make()
        t = 0.0
        for line in range(4):  # 4 lines per 512-byte row
            t = dram.access(t, line)
        assert dram.row_hit_rate == pytest.approx(3 / 4)

    def test_rows_interleave_across_banks(self):
        dram = self.make()
        # lines_per_row = 4; rows 0..3 land on banks 0..3.
        assert dram.bank_of(0) == 0
        assert dram.bank_of(4) == 1
        assert dram.bank_of(12) == 3
        assert dram.bank_of(16) == 0
        assert dram.row_of(16) == 1

    def test_bank_parallelism_beats_single_bank(self):
        many = self.make(num_banks=4)
        one = self.make(num_banks=1)
        lines = [i * 4 for i in range(8)]  # all row misses
        t_many = max(many.access(0.0, line) for line in lines)
        t_one = max(one.access(0.0, line) for line in lines)
        assert t_many < t_one

    def test_bus_is_shared_bottleneck(self):
        dram = self.make(bytes_per_cycle=1.0)  # 128 cycles per line on bus
        done = [dram.access(0.0, i * 4) for i in range(4)]
        # Bus serializes at 128 cycles per transfer regardless of banks.
        assert max(done) >= 4 * 128

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.make(num_banks=0)
        with pytest.raises(ConfigurationError):
            self.make(row_bytes=64)

    def test_utilization(self):
        dram = self.make()
        dram.access(0.0, 0)
        assert 0.0 < dram.utilization(1000.0) <= 1.0

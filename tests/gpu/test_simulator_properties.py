"""Property-based simulator invariants over randomized tiny workloads."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import GPUConfig, simulate
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace


def tiny_config(seed_free=True):
    return GPUConfig(
        num_sms=2, llc_slices=2, num_mcs=1, capacity_scale=1.0,
        latency_jitter=0.0 if seed_free else 0.3, name="prop",
    )


workload_strategy = st.builds(
    dict,
    num_ctas=st.integers(min_value=1, max_value=6),
    warps=st.integers(min_value=1, max_value=3),
    accesses=st.integers(min_value=0, max_value=12),
    compute=st.integers(min_value=0, max_value=20),
    tail=st.integers(min_value=0, max_value=9),
    footprint=st.integers(min_value=1, max_value=400),
    seed=st.integers(min_value=0, max_value=2**16),
)


def build_workload(params) -> WorkloadTrace:
    rng = np.random.default_rng(params["seed"])
    accesses = params["accesses"]
    ctas = params["num_ctas"]

    pregen = [
        [
            rng.integers(0, params["footprint"], accesses).tolist()
            for __ in range(params["warps"])
        ]
        for __ in range(ctas)
    ]

    def build(cta_id):
        warps = [
            WarpTrace(
                [params["compute"]] * accesses,
                pregen[cta_id][w],
                tail_compute=params["tail"],
            )
            for w in range(params["warps"])
        ]
        return CTATrace(cta_id, warps)

    threads = params["warps"] * 32
    return WorkloadTrace(
        "prop", [KernelTrace("k", ctas, threads, build)]
    )


class TestSimulatorInvariants:
    @settings(max_examples=40, deadline=None)
    @given(params=workload_strategy)
    def test_accounting_invariants(self, params):
        workload = build_workload(params)
        result = simulate(tiny_config(), workload)

        n_warps = params["num_ctas"] * params["warps"]
        expected_warp_insns = n_warps * (
            params["accesses"] * (params["compute"] + 1) + params["tail"]
        )
        assert result.warp_instructions == expected_warp_insns
        assert result.thread_instructions == expected_warp_insns * 32
        assert result.memory_accesses == n_warps * params["accesses"]

        # Cache accounting: LLC traffic is primary L1 misses only.
        assert result.l1_hits + result.l1_misses == result.memory_accesses
        llc_traffic = result.llc_hits + result.llc_misses
        assert llc_traffic <= result.l1_misses

        assert result.cycles > 0
        assert 0.0 <= result.memory_stall_fraction <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(params=workload_strategy)
    def test_deterministic_with_jitter(self, params):
        workload_a = build_workload(params)
        workload_b = build_workload(params)
        a = simulate(tiny_config(seed_free=False), workload_a)
        b = simulate(tiny_config(seed_free=False), workload_b)
        assert a.cycles == b.cycles
        assert a.llc_misses == b.llc_misses

    @settings(max_examples=15, deadline=None)
    @given(
        params=workload_strategy.filter(lambda p: p["accesses"] > 0),
        extra_compute=st.integers(min_value=1, max_value=30),
    )
    def test_more_work_monotone_for_single_warp(self, params, extra_compute):
        """Strict monotonicity only holds without contention: in a
        contended machine, adding compute can *improve* cache interleaving
        (a genuine timing anomaly hypothesis found for us)."""
        solo = dict(params)
        solo["num_ctas"] = 1
        solo["warps"] = 1
        base = simulate(tiny_config(), build_workload(solo))
        heavier = dict(solo)
        heavier["compute"] = solo["compute"] + extra_compute
        more = simulate(tiny_config(), build_workload(heavier))
        assert more.cycles > base.cycles

    @settings(max_examples=15, deadline=None)
    @given(
        params=workload_strategy,
        extra_compute=st.integers(min_value=1, max_value=30),
    )
    def test_more_work_never_much_faster(self, params, extra_compute):
        """Contended case: interleaving shifts bound the anomaly, they do
        not let extra work cut runtime in half."""
        base = simulate(tiny_config(), build_workload(params))
        heavier = dict(params)
        heavier["compute"] = params["compute"] + extra_compute
        more = simulate(tiny_config(), build_workload(heavier))
        assert more.cycles >= 0.5 * base.cycles

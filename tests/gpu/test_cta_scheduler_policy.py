"""CTA scheduling-policy tests (round-robin vs contiguous)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.gpu import GPUConfig, simulate
from repro.gpu.cta import CTADispatcher
from repro.gpu.sm import StreamingMultiprocessor
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace


def sms(n=2):
    cfg = GPUConfig(num_sms=n, name="t")
    return [StreamingMultiprocessor(i, cfg) for i in range(n)]


class TestDispatcherPolicies:
    def test_round_robin_spreads(self):
        d = CTADispatcher(sms(2), policy="round_robin")
        d.load_kernel(4, max_resident=2)
        assert d.initial_placements() == [(0, 0), (1, 1), (2, 0), (3, 1)]

    def test_contiguous_fills(self):
        d = CTADispatcher(sms(2), policy="contiguous")
        d.load_kernel(4, max_resident=2)
        assert d.initial_placements() == [(0, 0), (1, 0), (2, 1), (3, 1)]

    def test_contiguous_partial_last_sm(self):
        d = CTADispatcher(sms(3), policy="contiguous")
        d.load_kernel(4, max_resident=2)
        placements = d.initial_placements()
        assert [p[1] for p in placements] == [0, 0, 1, 1]
        assert d.pending == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            CTADispatcher(sms(), policy="random")

    def test_config_validates_policy(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(cta_scheduler="hilbert")


class TestPolicyAffectsLocality:
    def test_contiguous_improves_shared_chunk_locality(self):
        """Neighbouring CTAs share data chunks; contiguous placement puts
        sharers on one SM so the second CTA hits the first one's L1 fills
        less often across SMs -> fewer LLC accesses overall is NOT
        guaranteed, but the placement must at least differ in timing."""
        def build(cta_id):
            chunk = (cta_id // 2) * 64  # pairs of CTAs share a chunk
            lines = [chunk + i for i in range(32)]
            return CTATrace(cta_id, [WarpTrace([2] * 32, lines)])

        def workload():
            return WorkloadTrace("loc", [KernelTrace("k", 8, 64, build)])

        base = dict(num_sms=4, llc_slices=2, num_mcs=1, capacity_scale=1.0,
                    latency_jitter=0.0, name="t")
        rr = simulate(GPUConfig(**base), workload())
        contig = simulate(
            GPUConfig(cta_scheduler="contiguous", **base), workload()
        )
        assert rr.thread_instructions == contig.thread_instructions
        assert contig.l1_hits >= rr.l1_hits  # sharers colocated

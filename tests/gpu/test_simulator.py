"""GPU simulator integration tests on small hand-built workloads."""

import pytest

from repro.exceptions import SimulationError
from repro.gpu import GPUConfig, GPUSimulator, simulate
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace


def tiny_config(**overrides) -> GPUConfig:
    defaults = dict(
        num_sms=2,
        llc_slices=2,
        num_mcs=1,
        capacity_scale=1.0,
        latency_jitter=0.0,
        name="tiny",
    )
    defaults.update(overrides)
    return GPUConfig(**defaults)


def uniform_workload(
    num_ctas=4,
    warps_per_cta=2,
    accesses=5,
    compute=8,
    threads_per_cta=64,
    line_stride=1,
    name="wl",
) -> WorkloadTrace:
    def build(cta_id):
        warps = []
        for w in range(warps_per_cta):
            base = (cta_id * warps_per_cta + w) * accesses * line_stride
            lines = [base + i * line_stride for i in range(accesses)]
            warps.append(WarpTrace([compute] * accesses, lines))
        return CTATrace(cta_id, warps)

    kernel = KernelTrace(name + "-k0", num_ctas, threads_per_cta, build)
    return WorkloadTrace(name, [kernel])


class TestBasicExecution:
    def test_completes_and_counts_instructions(self):
        wl = uniform_workload(num_ctas=4, warps_per_cta=2, accesses=5, compute=8)
        result = simulate(tiny_config(), wl)
        warp_instructions = 4 * 2 * 5 * (8 + 1)
        assert result.warp_instructions == warp_instructions
        assert result.thread_instructions == warp_instructions * 32
        assert result.memory_accesses == 4 * 2 * 5
        assert result.cycles > 0
        assert result.ipc > 0

    def test_single_use(self):
        sim = GPUSimulator(tiny_config())
        sim.run(uniform_workload())
        with pytest.raises(SimulationError):
            sim.run(uniform_workload())

    def test_deterministic(self):
        r1 = simulate(tiny_config(), uniform_workload())
        r2 = simulate(tiny_config(), uniform_workload())
        assert r1.cycles == r2.cycles
        assert r1.thread_instructions == r2.thread_instructions

    def test_multi_kernel_sequential(self):
        def build(cta_id):
            return CTATrace(cta_id, [WarpTrace([1], [cta_id])])

        k1 = KernelTrace("k1", 2, 32, build)
        k2 = KernelTrace("k2", 2, 32, build)
        result = simulate(tiny_config(), WorkloadTrace("two", [k1, k2]))
        assert result.warp_instructions == 4 * 2

    def test_tail_compute_counted(self):
        def build(cta_id):
            return CTATrace(cta_id, [WarpTrace([2], [0], tail_compute=10)])

        result = simulate(
            tiny_config(), WorkloadTrace("tail", [KernelTrace("k", 1, 32, build)])
        )
        assert result.warp_instructions == 13

    def test_start_offset_delays_completion(self):
        def build_with(offset):
            def build(cta_id):
                return CTATrace(
                    cta_id, [WarpTrace([1], [0], start_offset=offset)]
                )
            return WorkloadTrace("o", [KernelTrace("k", 1, 32, build)])

        base = simulate(tiny_config(), build_with(0.0)).cycles
        delayed = simulate(tiny_config(), build_with(500.0)).cycles
        assert delayed == pytest.approx(base + 500.0)


class TestScalingSanity:
    def test_more_sms_never_slower_on_parallel_work(self):
        wl_small = uniform_workload(num_ctas=32, accesses=4)
        r2 = simulate(tiny_config(num_sms=2), wl_small)
        wl_small = uniform_workload(num_ctas=32, accesses=4)
        r4 = simulate(tiny_config(num_sms=4, llc_slices=4, num_mcs=2), wl_small)
        assert r4.cycles < r2.cycles

    def test_compute_bound_ipc_near_peak(self):
        # One CTA of 2 warps with huge compute bursts: IPC per SM should
        # approach issue_width * threads_per_warp on the active SM.
        def build(cta_id):
            return CTATrace(
                cta_id,
                [WarpTrace([5000], [w]) for w in range(2)],
            )

        cfg = tiny_config(num_sms=1)
        result = simulate(cfg, WorkloadTrace("c", [KernelTrace("k", 1, 64, build)]))
        peak = cfg.issue_width * cfg.threads_per_warp
        assert result.ipc > 0.8 * peak

    def test_memory_stall_fraction_bounds(self):
        result = simulate(tiny_config(), uniform_workload(compute=0, accesses=20))
        assert 0.0 <= result.memory_stall_fraction <= 1.0
        # Zero-compute workload on two warps is heavily memory stalled.
        assert result.memory_stall_fraction > 0.5


class TestResultDerived:
    def test_mpki_consistent_with_counts(self):
        wl = uniform_workload(num_ctas=8, accesses=10)
        result = simulate(tiny_config(), wl)
        expected = 1000.0 * result.llc_misses / result.thread_instructions
        assert result.mpki == pytest.approx(expected)

    def test_summary_string(self):
        result = simulate(tiny_config(), uniform_workload())
        text = result.summary()
        assert "wl" in text and "IPC" in text

    def test_events_counted(self):
        result = simulate(tiny_config(), uniform_workload())
        assert result.events >= result.memory_accesses


class TestKernelLaunchOverhead:
    def _two_kernel_workload(self):
        def build(cta_id):
            return CTATrace(cta_id, [WarpTrace([2], [cta_id])])

        kernels = [KernelTrace(f"k{i}", 2, 32, build) for i in range(2)]
        return WorkloadTrace("two", kernels)

    def test_overhead_adds_between_kernels(self):
        base = simulate(tiny_config(), self._two_kernel_workload())
        padded = simulate(
            tiny_config(kernel_launch_overhead=5000.0),
            self._two_kernel_workload(),
        )
        # One gap between two kernels: exactly one overhead is added.
        assert padded.cycles == pytest.approx(base.cycles + 5000.0)

    def test_single_kernel_unaffected(self):
        wl = uniform_workload(num_ctas=2)
        base = simulate(tiny_config(), wl)
        wl = uniform_workload(num_ctas=2)
        padded = simulate(tiny_config(kernel_launch_overhead=5000.0), wl)
        assert padded.cycles == pytest.approx(base.cycles)

    def test_negative_overhead_rejected(self):
        from repro.exceptions import ConfigurationError
        with pytest.raises(ConfigurationError):
            tiny_config(kernel_launch_overhead=-1.0)

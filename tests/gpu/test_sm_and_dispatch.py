"""SM issue/stall accounting and CTA dispatcher tests."""

import pytest

from repro.exceptions import SimulationError
from repro.gpu.config import GPUConfig
from repro.gpu.cta import CTADispatcher
from repro.gpu.sm import StreamingMultiprocessor


def make_sm(sm_id=0, **overrides) -> StreamingMultiprocessor:
    cfg = GPUConfig(num_sms=4, name="t", **overrides)
    return StreamingMultiprocessor(sm_id, cfg)


class TestIssue:
    def test_issue_time_uses_issue_width(self):
        sm = make_sm()
        finish = sm.issue(0.0, 10)  # issue_width 2 -> 5 cycles
        assert finish == pytest.approx(5.0)
        assert sm.warp_instructions == 10

    def test_bursts_serialize_through_pipeline(self):
        sm = make_sm()
        sm.issue(0.0, 10)
        assert sm.issue(0.0, 10) == pytest.approx(10.0)

    def test_negative_burst_rejected(self):
        with pytest.raises(SimulationError):
            make_sm().issue(0.0, -1)


class TestOccupancyTracking:
    def test_active_time_counts_resident_periods(self):
        sm = make_sm()
        sm.max_resident = 2
        sm.cta_started(10.0)
        sm.cta_finished(30.0)
        sm.cta_started(50.0)
        sm.cta_finished(60.0)
        sm.close(100.0)
        assert sm.active_time == pytest.approx(30.0)

    def test_overlapping_ctas_single_interval(self):
        sm = make_sm()
        sm.max_resident = 2
        sm.cta_started(0.0)
        sm.cta_started(5.0)
        sm.cta_finished(20.0)
        sm.cta_finished(40.0)
        sm.close(40.0)
        assert sm.active_time == pytest.approx(40.0)

    def test_residency_limit_enforced(self):
        sm = make_sm()
        sm.max_resident = 1
        sm.cta_started(0.0)
        with pytest.raises(SimulationError):
            sm.cta_started(1.0)

    def test_finish_without_start_rejected(self):
        with pytest.raises(SimulationError):
            make_sm().cta_finished(0.0)


class TestMemoryStallFraction:
    def test_fully_busy_sm_has_no_stall(self):
        sm = make_sm()
        sm.max_resident = 1
        sm.cta_started(0.0)
        sm.warp_started(0.0)
        sm.issue(0.0, 200)
        sm.warp_finished(100.0)
        sm.cta_finished(100.0)
        sm.close(100.0)
        assert sm.memory_stall_fraction() == pytest.approx(0.0)

    def test_half_stalled(self):
        sm = make_sm()
        sm.max_resident = 1
        sm.cta_started(0.0)
        sm.warp_started(0.0)
        sm.issue(0.0, 100)          # pipeline busy 50 of 100 active cycles
        sm.warp_finished(100.0)
        sm.cta_finished(100.0)
        sm.close(100.0)
        assert sm.memory_stall_fraction() == pytest.approx(0.5)

    def test_launch_stagger_not_counted_as_stall(self):
        sm = make_sm()
        sm.max_resident = 1
        sm.cta_started(0.0)
        sm.warp_started(40.0)       # 40 cycles of launch stagger
        sm.issue(40.0, 120)         # busy 40..100
        sm.warp_finished(100.0)
        sm.cta_finished(100.0)
        sm.close(100.0)
        # Active 100, busy 60, stagger 40 -> no memory stall at all.
        assert sm.memory_stall_fraction() == pytest.approx(0.0)

    def test_unbalanced_events_rejected(self):
        sm = make_sm()
        with pytest.raises(SimulationError):
            sm.warp_finished(0.0)

    def test_idle_sm_reports_zero(self):
        sm = make_sm()
        sm.close(1000.0)
        assert sm.memory_stall_fraction() == 0.0


class TestDispatcher:
    def _sms(self, n=4):
        cfg = GPUConfig(num_sms=n, name="t")
        return [StreamingMultiprocessor(i, cfg) for i in range(n)]

    def test_initial_placement_round_robin(self):
        sms = self._sms(2)
        d = CTADispatcher(sms)
        d.load_kernel(num_ctas=4, max_resident=1)
        placements = d.initial_placements()
        assert placements == [(0, 0), (1, 1)]
        assert d.pending == 2

    def test_waves_fill_to_residency(self):
        sms = self._sms(2)
        d = CTADispatcher(sms)
        d.load_kernel(num_ctas=10, max_resident=2)
        placements = d.initial_placements()
        assert len(placements) == 4
        assert [p[1] for p in placements] == [0, 1, 0, 1]

    def test_fewer_ctas_than_sms(self):
        sms = self._sms(4)
        d = CTADispatcher(sms)
        d.load_kernel(num_ctas=2, max_resident=6)
        placements = d.initial_placements()
        assert [p[1] for p in placements] == [0, 1]

    def test_next_for_backfills(self):
        sms = self._sms(2)
        d = CTADispatcher(sms)
        d.load_kernel(num_ctas=5, max_resident=1)
        d.initial_placements()
        assert d.next_for(1) == 2
        assert d.next_for(0) == 3
        assert d.next_for(0) == 4
        assert d.next_for(0) is None

    def test_placements_do_not_leak_reservations(self):
        sms = self._sms(2)
        d = CTADispatcher(sms)
        d.load_kernel(num_ctas=4, max_resident=2)
        d.initial_placements()
        assert all(sm.resident_ctas == 0 for sm in sms)

"""Simulation-cache subsystem tests: stale-key invalidation, crash
tolerance (corrupt shards, truncated legacy files), legacy migration and
serial-vs-parallel result identity."""

import json
import os
from dataclasses import asdict, replace

import pytest

from repro.analysis.parallel import ParallelRunner, RunRequest, execute_request
from repro.analysis.runner import CachedRunner, sim_key
from repro.analysis.simcache import ResultStore
from repro.workloads import get_benchmark


@pytest.fixture
def cache_root(tmp_path):
    return str(tmp_path / "simcache")


@pytest.fixture
def tiny_spec():
    return get_benchmark("va", weak=True)


def _deterministic_fields(result) -> dict:
    """Every SimulationResult field except the host-time measurement."""
    fields = asdict(result)
    fields.pop("wall_time_s")
    return fields


class TestStaleKeyInvalidation:
    def test_work_share_edit_invalidates(self, cache_root, tiny_spec):
        """Editing a kernel's work_share must miss, not reuse stale runs."""
        runner = CachedRunner(cache_root)
        runner.simulate(tiny_spec, 8)
        edited = replace(
            tiny_spec,
            kernels=tuple(
                replace(k, work_share=k.work_share * 0.5)
                for k in tiny_spec.kernels
            ),
        )
        runner.simulate(edited, 8)
        assert runner.misses == 2
        assert runner.hits == 0

    def test_threads_per_cta_edit_invalidates(self, cache_root, tiny_spec):
        runner = CachedRunner(cache_root)
        runner.simulate(tiny_spec, 8)
        edited = replace(
            tiny_spec,
            kernels=tuple(
                replace(k, threads_per_cta=k.threads_per_cta * 2)
                for k in tiny_spec.kernels
            ),
        )
        assert sim_key(edited, 8, 1.0, 0) != sim_key(tiny_spec, 8, 1.0, 0)


class TestCorruptShardQuarantine:
    def test_corrupt_tail_is_skipped_and_shard_quarantined(
        self, cache_root, tiny_spec
    ):
        first = CachedRunner(cache_root).simulate(tiny_spec, 8)
        shard = os.path.join(cache_root, "va.jsonl")
        with open(shard, "a") as fh:
            fh.write('{"key": "half-written record without a clos')
        with pytest.warns(UserWarning, match="corrupt lines"):
            runner = CachedRunner(cache_root)
        # The good record was salvaged; only the bad line is gone.
        again = runner.simulate(tiny_spec, 8)
        assert runner.hits == 1 and runner.misses == 0
        assert again.cycles == first.cycles
        stats = runner.stats()
        assert stats["quarantined_shards"] == 1
        assert stats["corrupt_lines"] == 1
        # Original moved aside for inspection, shard rewritten clean.
        assert os.path.exists(
            os.path.join(cache_root, "quarantine", "va.jsonl")
        )
        with open(shard) as fh:
            for line in fh:
                json.loads(line)

    def test_fully_garbled_shard_recomputes(self, cache_root, tiny_spec):
        CachedRunner(cache_root).simulate(tiny_spec, 8)
        shard = os.path.join(cache_root, "va.jsonl")
        with open(shard, "w") as fh:
            fh.write("\x00\x01 not json at all\n{broken\n")
        with pytest.warns(UserWarning):
            runner = CachedRunner(cache_root)
        runner.simulate(tiny_spec, 8)
        assert runner.misses == 1  # degraded to recomputation, no crash
        assert not os.path.exists(shard) or os.path.getsize(shard) > 0

    def test_quarantined_shard_does_not_reinfect(self, cache_root, tiny_spec):
        CachedRunner(cache_root).simulate(tiny_spec, 8)
        with open(os.path.join(cache_root, "va.jsonl"), "a") as fh:
            fh.write("garbage\n")
        with pytest.warns(UserWarning):
            CachedRunner(cache_root)
        # Second load sees a clean store: no warning, full hit.
        runner = CachedRunner(cache_root)
        runner.simulate(tiny_spec, 8)
        assert runner.hits == 1
        assert runner.stats()["quarantined_shards"] == 0


class TestLegacyMigration:
    def test_legacy_entries_served_and_sharded(self, tmp_path, tiny_spec):
        # Build a legacy single-file cache holding one current-format run.
        donor_root = str(tmp_path / "donor")
        donor = CachedRunner(donor_root)
        result = donor.simulate(tiny_spec, 8)
        legacy = {key: payload for key, payload in donor.store.items()}
        root = str(tmp_path / "simcache")
        with open(root + ".json", "w") as fh:
            json.dump(legacy, fh)

        runner = CachedRunner(root)
        assert runner.stats()["legacy_imported"] == 1
        migrated = runner.simulate(tiny_spec, 8)
        assert runner.hits == 1 and runner.misses == 0
        assert migrated.cycles == result.cycles
        # Entries were flushed into a shard, so the next load no longer
        # depends on the legacy file.
        os.remove(root + ".json")
        rerun = CachedRunner(root)
        rerun.simulate(tiny_spec, 8)
        assert rerun.hits == 1 and rerun.misses == 0

    def test_json_cache_path_spelling_still_works(self, tmp_path, tiny_spec):
        """The pre-sharding ``.../simcache.json`` path keeps working."""
        path = str(tmp_path / "simcache.json")
        CachedRunner(path).simulate(tiny_spec, 8)
        runner = CachedRunner(path)
        runner.simulate(tiny_spec, 8)
        assert runner.hits == 1 and runner.misses == 0

    def test_truncated_legacy_file_warns_and_recomputes(
        self, tmp_path, tiny_spec
    ):
        root = str(tmp_path / "simcache")
        with open(root + ".json", "w") as fh:
            fh.write('{"sim|abcd|efgh": {"workload": "va", "cyc')  # truncated
        with pytest.warns(UserWarning, match="legacy cache"):
            runner = CachedRunner(root)
        runner.simulate(tiny_spec, 8)
        assert runner.misses == 1
        assert runner.stats()["legacy_corrupt"] == 1


class TestSerialParallelIdentity:
    BENCHMARKS = ("bp", "va")
    SIZES = (8, 16)

    def _requests(self):
        return [
            RunRequest("sim", get_benchmark(abbr, weak=True), size=n)
            for abbr in self.BENCHMARKS
            for n in self.SIZES
        ]

    def test_parallel_results_bit_identical_to_serial(self, tmp_path):
        serial = CachedRunner(str(tmp_path / "serial"), jobs=1)
        parallel = CachedRunner(str(tmp_path / "parallel"), jobs=2)
        executed = ParallelRunner(parallel.store, jobs=2).run_batch(
            self._requests()
        )
        assert executed == len(self.BENCHMARKS) * len(self.SIZES)
        for abbr in self.BENCHMARKS:
            spec = get_benchmark(abbr, weak=True)
            for n in self.SIZES:
                a = serial.simulate(spec, n)
                b = parallel.simulate(spec, n)
                assert _deterministic_fields(a) == _deterministic_fields(b), (
                    f"{abbr}@{n}SM diverged between serial and parallel"
                )
        assert parallel.misses == 0  # every run was served by the batch

    def test_prefetch_skips_cached_runs(self, tmp_path, tiny_spec):
        runner = CachedRunner(str(tmp_path / "cache"), jobs=2)
        runner.simulate(tiny_spec, 8)
        executed = ParallelRunner(runner.store, jobs=2).run_batch(
            [RunRequest("sim", tiny_spec, size=8)]
        )
        assert executed == 0

    def test_duplicate_requests_collapse(self, tmp_path, tiny_spec):
        runner = CachedRunner(str(tmp_path / "cache"))
        executed = ParallelRunner(runner.store, jobs=1).run_batch(
            [RunRequest("sim", tiny_spec, size=8)] * 3
        )
        assert executed == 1

    def test_execute_request_matches_lazy_path(self, tmp_path, tiny_spec):
        runner = CachedRunner(str(tmp_path / "cache"))
        lazy = runner.simulate(tiny_spec, 8)
        key, shard, payload = execute_request(
            RunRequest("sim", tiny_spec, size=8)
        )
        assert key == sim_key(tiny_spec, 8, 1.0, 0)
        assert shard == tiny_spec.abbr
        payload.pop("wall_time_s")
        assert payload == _deterministic_fields(lazy)

    def test_mrc_and_mcm_requests_round_trip(self, tmp_path):
        spec = get_benchmark("va", weak=True)
        runner = CachedRunner(str(tmp_path / "cache"), jobs=2)
        executed = ParallelRunner(runner.store, jobs=2).run_batch([
            RunRequest("mrc", spec),
            RunRequest("mcm", spec, size=4, work_scale=4.0),
        ])
        assert executed == 2
        runner.miss_rate_curve(spec)
        runner.simulate_mcm(spec, 4, work_scale=4.0)
        assert runner.hits == 2 and runner.misses == 0


class TestStoreTelemetry:
    def test_flush_batching(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"), flush_every=3)
        store.put("k1", {"v": 1}, shard="a")
        store.put("k2", {"v": 2}, shard="a")
        assert store.stats()["flushes"] == 0
        store.put("k3", {"v": 3}, shard="b")
        stats = store.stats()
        assert stats["flushes"] == 1
        assert stats["appended_records"] == 3
        reloaded = ResultStore(str(tmp_path / "s"))
        assert len(reloaded) == 3

    def test_memory_only_store(self):
        store = ResultStore(None)
        store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}
        assert store.stats()["hits"] == 1

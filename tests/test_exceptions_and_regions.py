"""Exception-hierarchy and address-region convention tests."""

import pytest

from repro.exceptions import (
    ConfigurationError,
    PredictionError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)
from repro.memory_regions import BYPASS_BASE, is_bypass


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, SimulationError, TraceError,
        PredictionError, WorkloadError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catching_base_does_not_catch_builtin(self):
        with pytest.raises(KeyError):
            try:
                raise KeyError("x")
            except ReproError:  # pragma: no cover - must not trigger
                pytest.fail("ReproError must not catch KeyError")


class TestBypassRegion:
    def test_boundary(self):
        assert not is_bypass(BYPASS_BASE - 1)
        assert is_bypass(BYPASS_BASE)
        assert is_bypass(BYPASS_BASE + 10**6)

    def test_region_above_generator_bases(self):
        from repro.workloads import generators

        for base in (generators.HOT_BASE, generators.COLD_BASE,
                     generators.STREAM_BASE, generators.TILE_BASE,
                     generators.TREE_BASE):
            assert base < BYPASS_BASE

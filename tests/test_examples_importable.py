"""Smoke checks for the example scripts.

Examples are exercised end to end manually (they simulate for tens of
seconds); here we verify each parses, imports, and exposes a main().
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), path.name


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "strong_scaling_study.py",
            "weak_scaling_study.py", "mcm_chiplets.py",
            "custom_workload.py", "sieve_sampling.py"} <= names

"""Resource primitive tests: FIFO server, bandwidth link, token pool."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.resource import BandwidthResource, FifoServer, TokenPool
from repro.exceptions import SimulationError


class TestFifoServer:
    def test_idle_server_serves_immediately(self):
        s = FifoServer()
        assert s.service(10.0, 5.0) == 15.0

    def test_busy_server_queues(self):
        s = FifoServer()
        s.service(0.0, 10.0)
        assert s.service(2.0, 5.0) == 15.0  # starts at 10, not 2

    def test_gap_leaves_idle_time(self):
        s = FifoServer()
        s.service(0.0, 1.0)
        assert s.service(100.0, 1.0) == 101.0

    def test_busy_time_accumulates_service_only(self):
        s = FifoServer()
        s.service(0.0, 3.0)
        s.service(0.0, 4.0)
        assert s.busy_time == 7.0
        assert s.requests == 2

    def test_utilization(self):
        s = FifoServer()
        s.service(0.0, 25.0)
        assert s.utilization(100.0) == pytest.approx(0.25)
        assert s.utilization(0.0) == 0.0
        assert s.utilization(10.0) == 1.0  # clamped

    def test_negative_service_rejected(self):
        s = FifoServer()
        with pytest.raises(SimulationError):
            s.service(0.0, -1.0)

    def test_reset(self):
        s = FifoServer()
        s.service(0.0, 5.0)
        s.reset()
        assert s.next_free == 0.0
        assert s.busy_time == 0.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(min_value=0, max_value=1e3),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_completions_monotone_for_sorted_arrivals(self, reqs):
        """FIFO property: with time-ordered arrivals, completions are
        non-decreasing and never precede the arrival."""
        reqs.sort(key=lambda r: r[0])
        s = FifoServer()
        last = 0.0
        for now, service in reqs:
            done = s.service(now, service)
            assert done >= now + service
            assert done >= last
            last = done


class TestBandwidthResource:
    def test_transfer_time_from_rate(self):
        link = BandwidthResource(128.0)  # 128 bytes/cycle
        assert link.transfer(0.0, 256.0) == pytest.approx(2.0)

    def test_transfers_serialize(self):
        link = BandwidthResource(1.0)
        link.transfer(0.0, 10.0)
        assert link.transfer(0.0, 5.0) == pytest.approx(15.0)

    def test_bytes_moved(self):
        link = BandwidthResource(10.0)
        link.transfer(0.0, 100.0)
        link.transfer(0.0, 50.0)
        assert link.bytes_moved == 150.0

    def test_zero_rate_rejected(self):
        with pytest.raises(SimulationError):
            BandwidthResource(0.0)

    def test_negative_bytes_rejected(self):
        link = BandwidthResource(1.0)
        with pytest.raises(SimulationError):
            link.transfer(0.0, -1.0)


class TestTokenPool:
    def test_acquire_below_capacity_is_free(self):
        pool = TokenPool(2)
        assert pool.acquire(5.0) == 5.0
        pool.hold(100.0)
        assert pool.acquire(6.0) == 6.0

    def test_acquire_at_capacity_waits_for_earliest(self):
        pool = TokenPool(2)
        pool.hold(50.0)
        pool.hold(80.0)
        assert pool.acquire(10.0) == 50.0
        assert pool.total_wait_time == 40.0

    def test_acquire_after_release_is_free(self):
        pool = TokenPool(1)
        pool.hold(50.0)
        assert pool.acquire(60.0) == 60.0

    def test_hold_evicts_earliest_at_capacity(self):
        pool = TokenPool(1)
        pool.hold(50.0)
        pool.hold(70.0)  # replaces the 50.0 entry
        assert pool.acquire(0.0) == 70.0

    def test_in_flight(self):
        pool = TokenPool(4)
        pool.hold(10.0)
        pool.hold(20.0)
        assert pool.in_flight(15.0) == 1
        assert pool.in_flight(5.0) == 2
        assert pool.in_flight(25.0) == 0

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            TokenPool(0)

    def test_reset(self):
        pool = TokenPool(1)
        pool.hold(10.0)
        pool.reset()
        assert pool.acquired == 0
        assert pool.acquire(0.0) == 0.0

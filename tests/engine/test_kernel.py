"""Simulation-kernel (clock + event loop) tests."""

import pytest

from repro.engine.kernel import SimulationKernel
from repro.exceptions import SimulationError


class TestScheduling:
    def test_schedule_relative(self):
        k = SimulationKernel()
        seen = []
        k.schedule(5.0, lambda: seen.append(k.now))
        k.run()
        assert seen == [5.0]

    def test_schedule_absolute(self):
        k = SimulationKernel()
        seen = []
        k.schedule_at(3.0, lambda: seen.append(k.now))
        k.run()
        assert seen == [3.0]

    def test_cannot_schedule_into_past(self):
        k = SimulationKernel()
        k.schedule_at(10.0, lambda: None)
        k.run()
        assert k.now == 10.0
        with pytest.raises(SimulationError):
            k.schedule_at(5.0, lambda: None)
        with pytest.raises(SimulationError):
            k.schedule(-1.0, lambda: None)

    def test_events_cascade(self):
        k = SimulationKernel()
        order = []

        def first():
            order.append("first")
            k.schedule(2.0, second)

        def second():
            order.append("second")

        k.schedule(1.0, first)
        k.run()
        assert order == ["first", "second"]
        assert k.now == 3.0


class TestRunControl:
    def test_until_is_inclusive(self):
        k = SimulationKernel()
        seen = []
        k.schedule_at(5.0, seen.append, "at5")
        k.schedule_at(6.0, seen.append, "at6")
        k.run(until=5.0)
        assert seen == ["at5"]
        assert k.now == 5.0
        k.run()
        assert seen == ["at5", "at6"]

    def test_event_beyond_until_is_preserved(self):
        k = SimulationKernel()
        seen = []
        k.schedule_at(10.0, seen.append, "later")
        k.run(until=3.0)
        assert seen == []
        assert k.pending_events == 1
        k.run()
        assert seen == ["later"]

    def test_max_events(self):
        k = SimulationKernel()
        seen = []
        for i in range(5):
            k.schedule_at(float(i), seen.append, i)
        k.run(max_events=2)
        assert seen == [0, 1]

    def test_stop_from_handler(self):
        k = SimulationKernel()
        seen = []
        k.schedule_at(1.0, lambda: (seen.append(1), k.stop()))
        k.schedule_at(2.0, seen.append, 2)
        k.run()
        assert seen == [1]
        k.run()
        assert seen == [1, 2]

    def test_events_processed_counter(self):
        k = SimulationKernel()
        for i in range(7):
            k.schedule_at(float(i), lambda: None)
        k.run()
        assert k.events_processed == 7

    def test_cancel_survives_horizon_pause(self):
        # Regression: run(until=...) pops and re-inserts the first event
        # beyond the horizon; the handle must still cancel it afterwards.
        k = SimulationKernel()
        fired = []
        handle = k.schedule(10.0, fired.append, "late")
        k.run(until=5.0)
        handle.cancel()
        k.run()
        assert fired == []
        assert k.now == 5.0

    def test_reset(self):
        k = SimulationKernel()
        k.schedule_at(4.0, lambda: None)
        k.run()
        k.reset()
        assert k.now == 0.0
        assert k.pending_events == 0
        assert k.events_processed == 0


class TestCheckpointState:
    def test_snapshot_allowed_with_only_cancelled_events(self):
        # Regression: cancelled entries linger in the heap until popped,
        # and state_dict() used to refuse a kernel-boundary snapshot
        # because len(queue) counted the corpses.
        k = SimulationKernel()
        k.schedule_at(1.0, lambda: None)
        handle = k.schedule_at(9.0, lambda: None)
        k.run(until=1.0)
        handle.cancel()
        assert k.pending_events == 0
        state = k.state_dict()
        assert state["now"] == 1.0
        assert state["events_processed"] == 1

    def test_snapshot_refused_with_live_events(self):
        k = SimulationKernel()
        k.schedule_at(1.0, lambda: None)
        with pytest.raises(SimulationError):
            k.state_dict()

    def test_reset_kernel_checkpoints_like_fresh_kernel(self):
        # Regression: reset() kept the queue's seq counter, so the same
        # schedule replayed after a reset checkpointed a different
        # queue_seq than a fresh kernel — breaking bit-identical state
        # comparison across resets.
        def drive(kernel):
            kernel.schedule(1.0, lambda: None)
            kernel.schedule(2.0, lambda: None)
            kernel.run()
            return kernel.state_dict()

        fresh = drive(SimulationKernel())
        reused = SimulationKernel()
        drive(reused)
        reused.reset()
        assert drive(reused) == fresh

    def test_cancelled_events_survive_in_load_state_gate(self):
        # load_state must accept a queue holding only corpses too.
        k = SimulationKernel()
        handle = k.schedule(3.0, lambda: None)
        handle.cancel()
        k.load_state({"now": 7.0, "events_processed": 4, "queue_seq": 9})
        assert k.now == 7.0
        assert k.schedule(1.0, lambda: None).seq == 9

"""Regression: an event cancelled between pop and fire is a counted
no-op in the shipped engine and a hard error under paranoia mode."""

import pytest

import repro.engine.event as event_mod
from repro.engine.event import EventQueue
from repro.exceptions import InvariantError


class TestCancelledFire:
    def test_counted_noop_by_default(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, fired.append, "x")
        event = queue.pop()
        event.cancel()  # a component replays a handle it gave up
        event.fire()
        assert fired == []
        assert queue.cancelled_fires == 1
        event.fire()
        assert queue.cancelled_fires == 2

    def test_live_fire_is_never_counted(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, fired.append, "x")
        queue.pop().fire()
        assert fired == ["x"]
        assert queue.cancelled_fires == 0

    def test_hard_error_under_paranoia(self, monkeypatch):
        monkeypatch.setattr(event_mod, "PARANOIA", True)
        queue = EventQueue()
        queue.push(2.5, lambda: None)
        event = queue.pop()
        event.cancel()
        with pytest.raises(InvariantError, match="cancelled event"):
            event.fire()
        assert queue.cancelled_fires == 0  # escalated, not counted

    def test_reset_zeroes_the_tally(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        event = queue.pop()
        event.cancel()
        event.fire()
        assert queue.cancelled_fires == 1
        queue.reset()
        assert queue.cancelled_fires == 0

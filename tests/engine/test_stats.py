"""Statistics helper tests."""

import pytest

from repro.engine.stats import BusyTracker, Counter, StateTimeTracker


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("hits")
        c.add("hits", 4)
        assert c.get("hits") == 5
        assert c["hits"] == 5

    def test_missing_key_is_zero(self):
        assert Counter().get("nothing") == 0

    def test_as_dict_copies(self):
        c = Counter()
        c.add("x")
        d = c.as_dict()
        d["x"] = 99
        assert c.get("x") == 1

    def test_reset(self):
        c = Counter()
        c.add("x")
        c.reset()
        assert c.get("x") == 0

    def test_repr_sorted(self):
        c = Counter()
        c.add("b")
        c.add("a")
        assert repr(c) == "Counter(a=1, b=1)"


class TestBusyTracker:
    def test_accumulates_intervals(self):
        t = BusyTracker()
        t.record(0.0, 5.0)
        t.record(10.0, 12.0)
        assert t.busy_time == 7.0
        assert t.last_end == 12.0

    def test_utilization(self):
        t = BusyTracker()
        t.record(0.0, 30.0)
        assert t.utilization(100.0) == pytest.approx(0.3)
        assert t.utilization(0.0) == 0.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            BusyTracker().record(5.0, 3.0)

    def test_reset(self):
        t = BusyTracker()
        t.record(0.0, 5.0)
        t.reset()
        assert t.busy_time == 0.0


class TestStateTimeTracker:
    def test_single_transition(self):
        t = StateTimeTracker("idle")
        t.transition(10.0, "active")
        t.finish(25.0)
        assert t.time_in("idle") == 10.0
        assert t.time_in("active") == 15.0

    def test_repeated_states_accumulate(self):
        t = StateTimeTracker("idle")
        t.transition(5.0, "active")
        t.transition(8.0, "idle")
        t.transition(10.0, "active")
        t.finish(11.0)
        assert t.time_in("idle") == 7.0
        assert t.time_in("active") == 4.0

    def test_fraction_in(self):
        t = StateTimeTracker("a")
        t.transition(25.0, "b")
        t.finish(100.0)
        assert t.fraction_in("a", 100.0) == pytest.approx(0.25)
        assert t.fraction_in("a", 0.0) == 0.0

    def test_time_cannot_go_backwards(self):
        t = StateTimeTracker("a")
        t.transition(10.0, "b")
        with pytest.raises(ValueError):
            t.transition(5.0, "a")

    def test_unknown_state_is_zero(self):
        assert StateTimeTracker("a").time_in("zzz") == 0.0

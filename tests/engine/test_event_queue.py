"""Event queue ordering, cancellation and determinism tests."""

import pytest

from repro.engine.event import EventQueue


class TestOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.push(3.0, fired.append, "c")
        q.push(1.0, fired.append, "a")
        q.push(2.0, fired.append, "b")
        while (entry := q.pop_entry()) is not None:
            __, __, callback, args = entry[:4]
            callback(*args)
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        q = EventQueue()
        fired = []
        for tag in range(10):
            q.push(5.0, fired.append, tag)
        while (entry := q.pop_entry()) is not None:
            entry[2](*entry[3])
        assert fired == list(range(10))

    def test_peek_time_does_not_remove(self):
        q = EventQueue()
        q.push(7.0, lambda: None)
        assert q.peek_time() == 7.0
        assert len(q) == 1

    def test_empty_queue(self):
        q = EventQueue()
        assert q.pop() is None
        assert q.pop_entry() is None
        assert q.peek_time() is None
        assert len(q) == 0


class TestCancellation:
    def test_cancelled_event_not_fired(self):
        q = EventQueue()
        fired = []
        handle = q.push(1.0, fired.append, "dead")
        q.push(2.0, fired.append, "alive")
        handle.cancel()
        assert handle.cancelled
        while (entry := q.pop_entry()) is not None:
            entry[2](*entry[3])
        assert fired == ["alive"]

    def test_peek_skips_cancelled_head(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        handle.cancel()
        assert q.peek_time() == 2.0

    def test_fire_on_cancelled_is_noop(self):
        q = EventQueue()
        fired = []
        handle = q.push(1.0, fired.append, 1)
        handle.cancel()
        handle.fire()
        assert fired == []


class TestEventHandle:
    def test_exposes_time_and_seq(self):
        q = EventQueue()
        a = q.push(1.5, lambda: None)
        b = q.push(1.5, lambda: None)
        assert a.time == 1.5
        assert b.seq == a.seq + 1

    def test_push_entry_reinserts(self):
        q = EventQueue()
        fired = []
        q.push_entry(4.0, fired.append, ("x",))
        entry = q.pop_entry()
        assert entry[0] == 4.0
        entry[2](*entry[3])
        assert fired == ["x"]

    def test_push_entry_preserves_seq_fifo_position(self):
        # A horizon-paused entry re-inserted with its original seq must
        # still fire before same-time events pushed after it was popped.
        q = EventQueue()
        fired = []
        q.push(5.0, fired.append, "paused")
        time, seq, callback, args = q.pop_entry()[:4]
        q.push(5.0, fired.append, "late")
        q.push_entry(time, callback, args, seq=seq)
        while (entry := q.pop_entry()) is not None:
            entry[2](*entry[3])
        assert fired == ["paused", "late"]

    def test_handle_stays_live_across_reinsert(self):
        # Regression: re-inserting a popped entry used to build a *new*
        # entry list, orphaning the Event handle — cancel() flipped the
        # old list and the re-inserted copy fired anyway.
        q = EventQueue()
        fired = []
        handle = q.push(5.0, fired.append, "dead")
        popped = q.pop_entry()
        q.push_entry(popped[0], popped[2], popped[3], seq=popped[1],
                     entry=popped)
        handle.cancel()
        assert handle.cancelled
        while (entry := q.pop_entry()) is not None:
            entry[2](*entry[3])
        assert fired == []

    def test_pop_entry_returns_live_entry(self):
        # The popped value must BE the handle's entry list, not a copy,
        # so push_entry(entry=...) keeps the handle linked.
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        assert q.pop_entry() is handle._entry

    def test_push_entry_fresh_seq_without_original(self):
        q = EventQueue()
        fired = []
        q.push(5.0, fired.append, "first")
        q.push_entry(5.0, fired.append, ("second",))
        while (entry := q.pop_entry()) is not None:
            entry[2](*entry[3])
        assert fired == ["first", "second"]

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert len(q) == 0


class TestLiveCount:
    def test_len_excludes_cancelled_entries(self):
        # Regression: a cancelled event lingers in the heap until popped,
        # and len() used to count the corpse.
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        handle.cancel()
        assert len(q) == 1

    def test_len_zero_when_only_corpses_remain(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(4)]
        for handle in handles:
            handle.cancel()
        assert len(q) == 0

    def test_double_cancel_does_not_double_count(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert len(q) == 1

    def test_cancel_after_pop_does_not_corrupt_count(self):
        # Cancelling a handle whose entry already left the heap must not
        # decrement the live count of events still queued.
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.pop()  # removes `first`
        first.cancel()
        assert len(q) == 1

    def test_cancel_after_clear_does_not_corrupt_count(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        q.clear()
        handle.cancel()
        q.push(2.0, lambda: None)
        assert len(q) == 1

    def test_reinserted_entry_counts_once(self):
        q = EventQueue()
        handle = q.push(5.0, lambda: None)
        popped = q.pop_entry()
        assert len(q) == 0
        q.push_entry(popped[0], popped[2], popped[3], seq=popped[1],
                     entry=popped)
        assert len(q) == 1
        handle.cancel()
        assert len(q) == 0

    def test_peek_time_keeps_count(self):
        q = EventQueue()
        dead = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        dead.cancel()
        assert q.peek_time() == 2.0
        assert len(q) == 1

    def test_reset_rewinds_seq(self):
        # Regression: clear() kept the seq counter, so a reset queue and
        # a fresh queue disagreed on checkpointed queue_seq.
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.reset()
        assert q.seq == 0
        assert len(q) == 0
        assert q.push(1.0, lambda: None).seq == EventQueue().push(1.0, lambda: None).seq

"""Boundary-layer validation: configs, traces and predictor inputs.

Every check here guards a failure mode the core dataclasses accept
silently: zero clocks, an LLC smaller than one line, NaN launch offsets,
degenerate miss-rate curves.  Nonsense must fail loudly at the boundary
(typed errors with actionable messages) — except curves, which degrade
to proportional scaling with a warning instead of raising.
"""

import math
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.core import ScaleModelPredictor, ScaleModelProfile
from repro.exceptions import ConfigurationError, TraceError
from repro.gpu.config import GPUConfig, McmConfig
from repro.mrc import MissRateCurve
from repro.mrc.cliff import Region
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace
from repro.validate import (
    degenerate_curve_reason,
    validate_config,
    validate_mcm_config,
    validate_proportional_scaling,
    validate_trace,
)


class TestValidateConfig:
    def test_valid_config_returned_unchanged(self):
        config = GPUConfig.paper_baseline()
        assert validate_config(config) is config

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"sm_clock_hz": 0.0}, "sm_clock_hz must be positive"),
            ({"issue_width": 0}, "issue_width"),
            ({"llc_size": 64}, "smaller than one cache line"),
            ({"l1_size": 1}, "smaller than one cache"),
            ({"l1_mshrs": 0}, "l1_mshrs"),
            ({"noc_bisection_bps": 0.0}, "bisection bandwidth"),
            ({"mc_bandwidth_bps": -1.0}, "per-MC bandwidth"),
            ({"llc_slice_throughput": 0.0}, "llc_slice_throughput"),
            ({"dram_latency": float("nan")}, "finite"),
            ({"llc_latency": -5.0}, "finite and >= 0"),
        ],
    )
    def test_implausible_configs_rejected(self, overrides, match):
        config = replace(GPUConfig(), **overrides)
        with pytest.raises(ConfigurationError, match=match):
            validate_config(config)

    def test_error_message_names_the_config(self):
        config = replace(GPUConfig(), name="broken-gpu", sm_clock_hz=-1.0)
        with pytest.raises(ConfigurationError, match="broken-gpu"):
            validate_config(config)


class TestValidateMcmConfig:
    def test_valid_package_returned_unchanged(self):
        config = McmConfig()
        assert validate_mcm_config(config) is config

    def test_nonpositive_interconnect_bandwidth_rejected(self):
        config = replace(McmConfig(), inter_chiplet_bw_per_chiplet_bps=0.0)
        with pytest.raises(ConfigurationError, match="inter-chiplet"):
            validate_mcm_config(config)

    def test_infinite_interconnect_latency_rejected(self):
        config = replace(McmConfig(), inter_chiplet_latency=float("inf"))
        with pytest.raises(ConfigurationError, match="inter_chiplet_latency"):
            validate_mcm_config(config)

    def test_chiplet_is_validated_too(self):
        chiplet = replace(McmConfig().chiplet, sm_clock_hz=0.0)
        config = replace(McmConfig(), chiplet=chiplet)
        with pytest.raises(ConfigurationError, match="sm_clock_hz"):
            validate_mcm_config(config)


class TestProportionalScaling:
    def test_paper_pair_is_valid(self):
        small = GPUConfig.paper_baseline().scaled(8)
        large = GPUConfig.paper_baseline().scaled(32)
        assert validate_proportional_scaling(small, large) == pytest.approx(4.0)

    def test_reversed_pair_rejected(self):
        small = GPUConfig.paper_baseline().scaled(8)
        large = GPUConfig.paper_baseline().scaled(32)
        with pytest.raises(ConfigurationError, match="smaller than model"):
            validate_proportional_scaling(large, small)

    def test_changed_per_sm_resource_rejected(self):
        small = GPUConfig.paper_baseline().scaled(8)
        large = replace(
            GPUConfig.paper_baseline().scaled(32), warps_per_sm=96
        )
        with pytest.raises(ConfigurationError, match="per-SM resource"):
            validate_proportional_scaling(small, large)

    def test_broken_shared_resource_ratio_rejected(self):
        small = GPUConfig.paper_baseline().scaled(8)
        large = replace(
            GPUConfig.paper_baseline().scaled(32), llc_size=small.llc_size
        )
        with pytest.raises(ConfigurationError, match="Eq. 1"):
            validate_proportional_scaling(small, large)


def single_warp_workload(warp: WarpTrace) -> WorkloadTrace:
    kernel = KernelTrace("k0", 1, 64, lambda cta_id: CTATrace(cta_id, [warp]))
    return WorkloadTrace("wl", [kernel])


class TestValidateTrace:
    def test_healthy_trace_returned_unchanged(self):
        workload = single_warp_workload(WarpTrace([3, 2], [0, 1]))
        assert validate_trace(workload) is workload

    def test_nan_start_offset_rejected(self):
        # NaN slips past the dataclass guard (NaN < 0 is False).
        warp = WarpTrace([3], [0], start_offset=float("nan"))
        with pytest.raises(TraceError, match="start_offset"):
            validate_trace(single_warp_workload(warp))

    def test_negative_compute_burst_rejected(self):
        warp = WarpTrace([-4], [0])
        with pytest.raises(TraceError, match="compute burst"):
            validate_trace(single_warp_workload(warp))

    def test_nan_compute_burst_rejected(self):
        warp = WarpTrace([float("nan")], [0])
        with pytest.raises(TraceError, match="compute burst"):
            validate_trace(single_warp_workload(warp))

    def test_negative_line_address_rejected(self):
        warp = WarpTrace([3], [-1])
        with pytest.raises(TraceError, match="line address"):
            validate_trace(single_warp_workload(warp))

    def test_fractional_line_address_rejected(self):
        warp = WarpTrace([3], [1.5])
        with pytest.raises(TraceError, match="line address"):
            validate_trace(single_warp_workload(warp))

    def test_error_names_workload_and_kernel(self):
        warp = WarpTrace([3], [float("inf")])
        with pytest.raises(TraceError, match="wl/k0"):
            validate_trace(single_warp_workload(warp))


class TestDegenerateCurves:
    def good_curve(self) -> MissRateCurve:
        return MissRateCurve("wl", (100, 200, 400), (8.0, 4.0, 1.0))

    def test_healthy_curve_has_no_reason(self):
        assert degenerate_curve_reason(self.good_curve()) is None

    def test_nan_mpki(self):
        curve = MissRateCurve("wl", (100, 200), (float("nan"), 1.0))
        assert "non-finite mpki" in degenerate_curve_reason(curve)

    def test_infinite_miss_ratio(self):
        curve = MissRateCurve(
            "wl", (100, 200), (2.0, 1.0), miss_ratio=(float("inf"), 0.1)
        )
        assert "non-finite miss_ratio" in degenerate_curve_reason(curve)

    def test_nonpositive_capacity(self):
        curve = MissRateCurve("wl", (0, 200), (2.0, 1.0))
        assert "not positive" in degenerate_curve_reason(curve)

    def test_single_point_stub(self):
        # MissRateCurve itself rejects these, but cached/legacy payloads
        # may still hand the predictor arbitrary curve-shaped objects.
        stub = SimpleNamespace(
            capacities_bytes=(100,), mpki=(1.0,), miss_ratio=()
        )
        assert "point(s)" in degenerate_curve_reason(stub)

    def test_unsorted_capacities_stub(self):
        stub = SimpleNamespace(
            capacities_bytes=(200, 100), mpki=(1.0, 2.0), miss_ratio=()
        )
        assert "strictly increasing" in degenerate_curve_reason(stub)


class TestPredictorDegrades:
    def profile(self, curve) -> ScaleModelProfile:
        return ScaleModelProfile(
            workload="wl",
            sizes=(8, 16),
            ipcs=(10.0, 20.0),
            f_mem=0.5,
            curve=curve,
        )

    def test_degenerate_curve_degrades_with_warning(self):
        bad = MissRateCurve("wl", (100, 200), (float("nan"), 1.0))
        with pytest.warns(UserWarning, match="proportional scaling"):
            predictor = ScaleModelPredictor(self.profile(bad))
        assert predictor.analysis is None
        assert predictor._region_of(64) is Region.PRE_CLIFF

    def test_degraded_prediction_matches_curveless(self):
        bad = MissRateCurve("wl", (100, 200), (float("inf"), 1.0))
        with pytest.warns(UserWarning):
            degraded = ScaleModelPredictor(self.profile(bad))
        curveless = ScaleModelPredictor(self.profile(None))
        for target in (32, 64, 128):
            assert degraded.predict(target).ipc == pytest.approx(
                curveless.predict(target).ipc
            )
            assert degraded.predict(target).region is Region.PRE_CLIFF

    def test_healthy_curve_does_not_warn(self):
        curve = MissRateCurve("wl", (800, 1600, 3200), (8.0, 4.0, 1.0))
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            ScaleModelPredictor(self.profile(curve))

"""Resilience-layer unit tests: the shutdown coordinator, the disk
guard, size/threshold parsing, the per-process memory ceiling and the
circuit breaker's manifest accounting (integration with the execution
paths lives in ``tests/analysis/test_breaker.py``)."""

import json
import os
import signal
import subprocess
import sys
import warnings

import pytest

from repro import resilience
from repro.exceptions import ShutdownRequested
from repro.obs.metrics import get_registry
from repro.resilience import (
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_MIN_FREE_MB,
    CircuitBreaker,
    DiskGuard,
    ShutdownCoordinator,
    apply_memory_limit,
    breaker_threshold,
    get_coordinator,
    install_shutdown_handlers,
    parse_size,
    preflight_disk,
    reset_disk_guard,
)

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


class TestParseSize:
    @pytest.mark.parametrize(
        "text, expected",
        [
            ("512M", 512 * 1024 ** 2),
            ("2g", 2 * 1024 ** 3),
            ("1048576", 1048576),
            ("1.5k", 1536),
            ("1T", 1024 ** 4),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("text", ["", "  ", "banana", "0", "-1", "-2G", "G"])
    def test_garbage_is_none(self, text):
        assert parse_size(text) is None


class TestTolerantEnv:
    """The one shared degrade-don't-die policy for every REPRO_* knob."""

    def test_unset_and_empty_are_silent_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resilience.env_int("REPRO_TEST_KNOB", 7) == 7
            monkeypatch.setenv("REPRO_TEST_KNOB", "")
            assert resilience.env_float("REPRO_TEST_KNOB", 2.5) == 2.5

    @pytest.mark.parametrize("raw", ["banana", "-3", "1.5.2", " "])
    def test_garbage_warns_naming_the_knob_and_degrades(
        self, monkeypatch, raw
    ):
        monkeypatch.setenv("REPRO_TEST_KNOB", raw)
        with pytest.warns(UserWarning, match="REPRO_TEST_KNOB"):
            assert resilience.env_int("REPRO_TEST_KNOB", 4) == 4

    def test_valid_values_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "12")
        assert resilience.env_int("REPRO_TEST_KNOB", 1) == 12
        monkeypatch.setenv("REPRO_TEST_KNOB", "0.25")
        assert resilience.env_float("REPRO_TEST_KNOB", 1.0) == 0.25

    def test_parse_tolerant_custom_parser_and_expected_text(self):
        with pytest.warns(UserWarning, match="is not a colour"):
            value = resilience.parse_tolerant(
                "REPRO_HUE", "infrared", "blue",
                lambda raw: raw if raw in ("red", "blue") else None,
                expected="a colour",
            )
        assert value == "blue"
        assert (
            resilience.parse_tolerant(
                "REPRO_HUE", "red", "blue", lambda raw: raw
            )
            == "red"
        )

    def test_min_free_mb_garbage_keeps_disk_guard_working(
        self, monkeypatch
    ):
        monkeypatch.setenv(resilience.MIN_FREE_ENV, "lots")
        with pytest.warns(UserWarning, match=resilience.MIN_FREE_ENV):
            guard = DiskGuard()
        assert guard.min_free_bytes == DEFAULT_MIN_FREE_MB * 1024 * 1024

    def test_max_rss_garbage_warns_and_applies_nothing(self, monkeypatch):
        monkeypatch.setenv(resilience.MAX_RSS_ENV, "banana")
        with pytest.warns(UserWarning, match=resilience.MAX_RSS_ENV):
            assert apply_memory_limit() is None


class TestBreakerThreshold:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_BREAKER_THRESHOLD", raising=False)
        assert breaker_threshold() == DEFAULT_BREAKER_THRESHOLD

    def test_env_override_and_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "5")
        assert breaker_threshold() == 5
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "0")
        assert breaker_threshold() == 0

    @pytest.mark.parametrize("raw", ["banana", "-1"])
    def test_garbage_warns_and_falls_back(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", raw)
        with pytest.warns(UserWarning, match="REPRO_BREAKER_THRESHOLD"):
            assert breaker_threshold() == DEFAULT_BREAKER_THRESHOLD


class TestShutdownCoordinator:
    def test_check_is_a_noop_until_signalled(self):
        coordinator = ShutdownCoordinator()
        coordinator.check()  # must not raise

    def test_first_signal_requests_a_drain(self, capsys):
        coordinator = ShutdownCoordinator()
        coordinator._handle(signal.SIGTERM, None)
        assert coordinator.requested
        assert coordinator.signum == signal.SIGTERM
        assert "draining" in capsys.readouterr().err
        with pytest.raises(ShutdownRequested) as err:
            coordinator.check()
        assert err.value.signum == signal.SIGTERM
        assert "partial progress is flushed" in str(err.value)

    def test_shutdown_requested_evades_except_exception(self):
        # --keep-going handlers catch Exception/ReproError; a drain
        # request must sail straight through them.
        assert not isinstance(ShutdownRequested("x"), Exception)
        assert isinstance(ShutdownRequested("x"), BaseException)

    def test_second_signal_force_quits(self, monkeypatch, capsys):
        coordinator = ShutdownCoordinator()
        codes = []
        monkeypatch.setattr(resilience.os, "_exit", codes.append)
        coordinator._handle(signal.SIGTERM, None)
        coordinator._handle(signal.SIGTERM, None)
        assert codes == [128 + signal.SIGTERM]

    def test_signal_bumps_the_shutdown_counter(self, capsys):
        before = get_registry().counter("resilience.shutdown_requested").value
        ShutdownCoordinator()._handle(signal.SIGINT, None)
        after = get_registry().counter("resilience.shutdown_requested").value
        assert after == before + 1

    def test_reset_clears_the_request(self, capsys):
        coordinator = ShutdownCoordinator()
        coordinator._handle(signal.SIGINT, None)
        coordinator.reset()
        assert not coordinator.requested
        coordinator.check()  # no raise

    def test_install_and_uninstall_swap_real_handlers(self):
        coordinator = ShutdownCoordinator()
        previous = signal.getsignal(signal.SIGTERM)
        try:
            coordinator.install()
            assert coordinator.installed
            assert signal.getsignal(signal.SIGTERM) == coordinator._handle
            assert signal.getsignal(signal.SIGINT) == coordinator._handle
        finally:
            coordinator.uninstall()
        assert signal.getsignal(signal.SIGTERM) == previous
        assert not coordinator.installed

    def test_install_shutdown_handlers_returns_the_singleton(self):
        coordinator = install_shutdown_handlers()
        try:
            assert coordinator is get_coordinator()
            assert coordinator.installed
        finally:
            coordinator.uninstall()


class TestDiskGuard:
    def test_ok_with_real_free_space(self, tmp_path):
        assert DiskGuard(interval=0).ok(str(tmp_path))

    def test_zero_threshold_disables_the_guard(self, tmp_path):
        guard = DiskGuard(min_free_bytes=0, interval=0)
        assert guard.ok(str(tmp_path))

    def test_low_state_warns_once_and_counts_pressure(self, tmp_path):
        guard = DiskGuard(min_free_bytes=10 ** 18, interval=0)  # ~1 EB
        before = get_registry().counter("resilience.resource_pressure").value
        with pytest.warns(UserWarning, match="disk guard"):
            assert not guard.ok(str(tmp_path))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not guard.ok(str(tmp_path))  # latched: no second warning
        after = get_registry().counter("resilience.resource_pressure").value
        assert after == before + 1

    def test_note_failure_forces_low_until_recheck(self, tmp_path):
        guard = DiskGuard(min_free_bytes=1, interval=3600)
        assert guard.ok(str(tmp_path))
        with pytest.warns(UserWarning, match="disk guard"):
            guard.note_failure(str(tmp_path))
        assert not guard.ok(str(tmp_path))  # cached verdict inside interval

    def test_recovery_clears_the_warning_latch(self, tmp_path):
        guard = DiskGuard(min_free_bytes=1, interval=0)
        with pytest.warns(UserWarning, match="disk guard"):
            guard.note_failure(str(tmp_path))
        assert guard.ok(str(tmp_path))  # interval 0: re-stat, disk is fine
        assert not guard._warned_low  # a new episode will warn again

    def test_free_bytes_walks_up_to_an_existing_ancestor(self, tmp_path):
        guard = DiskGuard(interval=0)
        free = guard.free_bytes(str(tmp_path / "not" / "yet" / "created"))
        assert isinstance(free, int) and free > 0

    def test_env_garbage_warns_and_uses_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_MIN_FREE_MB", "banana")
        with pytest.warns(UserWarning, match="REPRO_MIN_FREE_MB"):
            guard = DiskGuard()
        assert guard.min_free_bytes == DEFAULT_MIN_FREE_MB * 1024 * 1024

    def test_preflight_skips_none_and_flags_low_targets(
        self, tmp_path, monkeypatch
    ):
        assert preflight_disk(None, str(tmp_path), None)
        monkeypatch.setenv("REPRO_MIN_FREE_MB", str(10 ** 12))  # ~1 EB
        reset_disk_guard()
        with pytest.warns(UserWarning, match="disk guard"):
            assert not preflight_disk(str(tmp_path))


class TestMemoryLimit:
    def test_unset_env_is_a_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_RSS", raising=False)
        assert apply_memory_limit() is None

    def test_garbage_warns_and_applies_nothing(self):
        with pytest.warns(UserWarning, match="REPRO_MAX_RSS"):
            assert apply_memory_limit("banana") is None

    def test_limit_maps_allocation_to_memory_error(self):
        # In a subprocess: RLIMIT_AS in this process would destabilise
        # the rest of the suite.
        code = (
            "from repro.resilience import apply_memory_limit\n"
            "limit = apply_memory_limit('1G')\n"
            "assert limit is not None and limit <= 1 << 30, limit\n"
            "try:\n"
            "    block = bytearray(2 << 30)\n"
            "except MemoryError:\n"
            "    print('MEMORY-ERROR-RAISED')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, timeout=60,
            env=dict(os.environ, PYTHONPATH=SRC),
        )
        assert result.returncode == 0, result.stderr
        assert "MEMORY-ERROR-RAISED" in result.stdout


def write_manifest(root, lines):
    os.makedirs(root, exist_ok=True)
    with open(os.path.join(root, "va.jsonl"), "w") as fh:
        for line in lines:
            fh.write(
                json.dumps(line) + "\n" if isinstance(line, dict) else line
            )


def record(key, status):
    return {"key": key, "status": status, "kind": "sim", "shard": "va"}


class TestCircuitBreakerAccounting:
    def test_streak_of_terminal_failures_trips(self, tmp_path):
        root = str(tmp_path / "failures")
        write_manifest(root, [record("k", s) for s in ("failed", "timeout", "oom")])
        breaker = CircuitBreaker(root, threshold=3)
        assert breaker.consecutive_failures("k") == 3
        assert breaker.tripped("k")
        assert not breaker.tripped("other")

    def test_ok_record_closes_the_streak(self, tmp_path):
        root = str(tmp_path / "failures")
        write_manifest(
            root,
            [record("k", "failed"), record("k", "failed"), record("k", "ok")],
        )
        breaker = CircuitBreaker(root, threshold=2)
        assert breaker.consecutive_failures("k") == 0
        assert not breaker.tripped("k")

    def test_interrupted_and_skipped_do_not_count(self, tmp_path):
        # Being drained by a SIGTERM says nothing about the config.
        root = str(tmp_path / "failures")
        write_manifest(
            root,
            [
                record("k", "failed"),
                record("k", "interrupted"),
                record("k", "skipped"),
                record("k", "failed"),
            ],
        )
        breaker = CircuitBreaker(root, threshold=3)
        assert breaker.consecutive_failures("k") == 2
        assert not breaker.tripped("k")

    def test_torn_and_foreign_lines_are_tolerated(self, tmp_path):
        root = str(tmp_path / "failures")
        write_manifest(
            root,
            [
                record("k", "failed"),
                '["not", "a", "dict"]\n',
                '{"status": "failed"}\n',  # no key
                record("k", "failed"),
                '{"key": "k", "sta',  # torn trailing line
            ],
        )
        breaker = CircuitBreaker(root, threshold=2)
        assert breaker.consecutive_failures("k") == 2
        assert breaker.tripped("k")

    def test_threshold_zero_or_no_root_disables(self, tmp_path):
        root = str(tmp_path / "failures")
        write_manifest(root, [record("k", "failed")] * 10)
        assert not CircuitBreaker(root, threshold=0).enabled
        assert not CircuitBreaker(root, threshold=0).tripped("k")
        assert not CircuitBreaker(None, threshold=3).enabled
        assert not CircuitBreaker(None, threshold=3).tripped("k")

    def test_tripped_keys_filters(self, tmp_path):
        root = str(tmp_path / "failures")
        write_manifest(
            root, [record("bad", "failed")] * 3 + [record("good", "failed")]
        )
        breaker = CircuitBreaker(root, threshold=3)
        assert breaker.tripped_keys(["bad", "good", "new"]) == ["bad"]

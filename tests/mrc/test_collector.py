"""MRC collector integration tests on small synthetic workloads."""

import numpy as np
import pytest

from repro.exceptions import PredictionError, TraceError
from repro.gpu.config import GPUConfig
from repro.memory_regions import BYPASS_BASE
from repro.mrc.collector import collect_miss_rate_curve, paper_capacity_points
from repro.mrc.interleave import StreamStats, interleave_cta, iter_interleaved
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace
from repro.units import MB


def cfg(scale=1.0):
    return GPUConfig.paper_baseline(capacity_scale=scale)


def sweep_workload(ws_lines, num_ctas=32, apw=64, name="sweep"):
    def build(cta_id):
        warps = []
        for w in range(2):
            gidx = cta_id * 2 + w
            lines = [(gidx * apw + i) % ws_lines for i in range(apw)]
            warps.append(WarpTrace([1] * apw, lines))
        return CTATrace(cta_id, warps)

    return WorkloadTrace(name, [KernelTrace("k", num_ctas, 64, build)])


class TestPaperCapacityPoints:
    def test_default_ladder(self):
        caps = paper_capacity_points()
        assert caps == [
            int(2.125 * MB), int(4.25 * MB), int(8.5 * MB),
            17 * MB, 34 * MB,
        ]


class TestInterleave:
    def test_equal_length_round_robin(self):
        a = np.array([1, 2, 3])
        b = np.array([10, 20, 30])
        merged = interleave_cta([a, b])
        assert merged.tolist() == [1, 10, 2, 20, 3, 30]

    def test_unequal_lengths(self):
        a = np.array([1, 2, 3])
        b = np.array([10])
        merged = interleave_cta([a, b])
        assert merged.tolist() == [1, 10, 2, 3]

    def test_empty_cta_rejected(self):
        with pytest.raises(TraceError):
            interleave_cta([])

    def test_stats_accumulate(self):
        wl = sweep_workload(100, num_ctas=4, apw=8)
        stats = StreamStats()
        chunks = list(iter_interleaved(wl, 2, 2, stats=stats))
        assert stats.ctas == 4
        assert stats.accesses == 4 * 2 * 8
        assert stats.warp_instructions == 4 * 2 * 8 * 2  # compute 1 + access
        total = sum(len(c) for __, c in chunks)
        assert total == stats.accesses


class TestCollector:
    def test_cliff_appears_at_working_set(self):
        # A 3 MB cyclic working set swept ~3.3 times: the 2.125 MB cache
        # thrashes; 4.25 MB and above keep it entirely (cold misses only).
        ws = int(3 * MB / 128)
        wl = sweep_workload(ws, num_ctas=256, apw=160)
        curve = collect_miss_rate_curve(wl, config=cfg(1.0))
        # Thrashing at 2.125 MB, cold-misses-only from 4.25 MB upward.
        assert curve.mpki[0] > 1.8 * curve.mpki[1]
        assert curve.mpki[1] == pytest.approx(curve.mpki[4], rel=0.05)
        cold_only = 1000.0 * (3 * MB / 128) / curve.metadata["thread_instructions"]
        assert curve.mpki[4] == pytest.approx(cold_only, rel=0.05)

    def test_methods_agree_exact(self):
        wl = sweep_workload(2000, num_ctas=64, apw=32)
        stack = collect_miss_rate_curve(wl, config=cfg(1.0), method="stack")
        lru = collect_miss_rate_curve(wl, config=cfg(1.0), method="lru")
        assert stack.mpki == pytest.approx(lru.mpki)

    def test_statstack_close_to_exact(self):
        def build(cta_id):
            rng = np.random.default_rng(cta_id)
            lines = rng.integers(0, 60000, 64).tolist()
            return CTATrace(cta_id, [WarpTrace([1] * 64, lines)])

        wl = WorkloadTrace("rand", [KernelTrace("k", 128, 32, build)])
        stack = collect_miss_rate_curve(wl, config=cfg(1.0), method="stack")
        stat = collect_miss_rate_curve(wl, config=cfg(1.0), method="statstack")
        for a, b in zip(stack.mpki, stat.mpki):
            assert b == pytest.approx(a, rel=0.25, abs=0.1)

    def test_bypass_lines_always_miss(self):
        def build(cta_id):
            lines = [BYPASS_BASE + cta_id * 8 + i for i in range(8)]
            return CTATrace(cta_id, [WarpTrace([1] * 8, lines)])

        wl = WorkloadTrace("byp", [KernelTrace("k", 16, 32, build)])
        curve = collect_miss_rate_curve(wl, config=cfg(1.0))
        # Identical MPKI at every capacity, and every access misses.
        assert len(set(curve.mpki)) == 1
        assert curve.miss_ratio[0] == pytest.approx(1.0)

    def test_custom_capacities(self):
        wl = sweep_workload(1000, num_ctas=16, apw=16)
        curve = collect_miss_rate_curve(
            wl, capacities_bytes=[1 * MB, 2 * MB], config=cfg(1.0)
        )
        assert curve.capacities_bytes == (1 * MB, 2 * MB)

    def test_metadata(self):
        wl = sweep_workload(1000, num_ctas=16, apw=16)
        curve = collect_miss_rate_curve(wl, config=cfg(1.0))
        md = curve.metadata
        assert md["l1_accesses"] == 16 * 2 * 16
        assert md["thread_instructions"] == 16 * 2 * 16 * 2 * 32
        assert md["collection_seconds"] >= 0

    def test_unknown_method(self):
        wl = sweep_workload(100, num_ctas=4, apw=8)
        with pytest.raises(PredictionError):
            collect_miss_rate_curve(wl, config=cfg(1.0), method="magic")

    def test_invalid_capacity(self):
        wl = sweep_workload(100, num_ctas=4, apw=8)
        with pytest.raises(PredictionError):
            collect_miss_rate_curve(wl, capacities_bytes=[0], config=cfg(1.0))

"""Exact stack-distance profiler tests, verified against a brute-force
reference implementation and a reference LRU simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import PredictionError
from repro.mrc.stack_distance import (
    COLD,
    FenwickTree,
    MultiCapacityLRU,
    StackDistanceProfiler,
)


def brute_force_stack_distance(stream):
    """O(n^2) reference: distinct lines between consecutive uses."""
    out = []
    last = {}
    for i, line in enumerate(stream):
        if line not in last:
            out.append(COLD)
        else:
            out.append(len(set(stream[last[line] + 1 : i])))
        last[line] = i
    return out


def reference_lru_misses(stream, capacity):
    lru = []
    misses = 0
    for line in stream:
        if line in lru:
            lru.remove(line)
        else:
            misses += 1
            if len(lru) >= capacity:
                lru.pop(0)
        lru.append(line)
    return misses


class TestFenwickTree:
    def test_point_add_prefix_sum(self):
        t = FenwickTree(8)
        t.add(3, 5)
        t.add(7, 2)
        assert t.prefix_sum(2) == 0
        assert t.prefix_sum(3) == 5
        assert t.prefix_sum(8) == 7
        assert t.range_sum(4, 7) == 2
        assert t.range_sum(5, 4) == 0

    def test_growth_preserves_content(self):
        t = FenwickTree(4)
        t.add(2, 3)
        t.add(100, 7)  # forces growth
        assert t.prefix_sum(2) == 3
        assert t.prefix_sum(100) == 10

    def test_invalid_index(self):
        with pytest.raises(PredictionError):
            FenwickTree().add(0, 1)
        with pytest.raises(PredictionError):
            FenwickTree().prefix_sum(-1)


class TestStackDistances:
    def test_textbook_example(self):
        p = StackDistanceProfiler()
        distances = [p.access(x) for x in [1, 2, 3, 2, 1, 1]]
        assert distances == [COLD, COLD, COLD, 1, 2, 0]
        assert p.cold_misses == 3

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=120))
    def test_matches_brute_force(self, stream):
        p = StackDistanceProfiler()
        got = [p.access(x) for x in stream]
        assert got == brute_force_stack_distance(stream)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=150),
        st.integers(min_value=1, max_value=12),
    )
    def test_miss_counts_match_lru(self, stream, capacity):
        """The single-pass histogram reproduces any LRU cache's misses."""
        p = StackDistanceProfiler()
        p.consume(stream)
        assert p.misses_at(capacity) == reference_lru_misses(stream, capacity)

    def test_miss_curve_monotone_nonincreasing(self):
        p = StackDistanceProfiler()
        p.consume([i % 7 for i in range(100)] + list(range(50, 80)))
        curve = p.miss_curve([1, 2, 4, 8, 16, 32])
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_distinct_lines(self):
        p = StackDistanceProfiler()
        p.consume([5, 6, 5, 7])
        assert p.distinct_lines == 3

    def test_miss_ratio(self):
        p = StackDistanceProfiler()
        p.consume([1, 1, 1, 1])
        assert p.miss_ratio_at(4) == pytest.approx(0.25)
        assert StackDistanceProfiler().miss_ratio_at(4) == 0.0

    def test_negative_capacity_rejected(self):
        p = StackDistanceProfiler()
        p.access(1)
        with pytest.raises(PredictionError):
            p.misses_at(-1)


class TestMultiCapacityLRU:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=25), min_size=1, max_size=150))
    def test_agrees_with_stack_distance(self, stream):
        capacities = [1, 3, 8]
        fast = MultiCapacityLRU(capacities)
        fast.consume(stream)
        exact = StackDistanceProfiler()
        exact.consume(stream)
        assert fast.miss_curve(capacities) == exact.miss_curve(capacities)

    def test_validation(self):
        with pytest.raises(PredictionError):
            MultiCapacityLRU([])
        with pytest.raises(PredictionError):
            MultiCapacityLRU([0])
        lru = MultiCapacityLRU([2, 4])
        with pytest.raises(PredictionError):
            lru.miss_curve([2])

"""Workload-characterization tests."""

import pytest

from repro.exceptions import TraceError
from repro.memory_regions import BYPASS_BASE
from repro.mrc.characterize import characterize, working_set_knees
from repro.mrc.stack_distance import StackDistanceProfiler
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace


def workload_from_stream(stream, name="w"):
    def build(cta_id):
        return CTATrace(0, [WarpTrace([1] * len(stream), list(stream))])

    return WorkloadTrace(name, [KernelTrace("k", 1, 32, build)])


class TestCharacterize:
    def test_footprint_and_reuse(self):
        stream = [0, 1, 2, 3] * 5  # 4 lines touched 5 times each
        ch = characterize(workload_from_stream(stream))
        assert ch.footprint_lines == 4
        assert ch.reuse_factor == pytest.approx(5.0)
        assert ch.accesses == 20

    def test_bypass_lines_counted_separately(self):
        stream = [0, 1, BYPASS_BASE + 5, BYPASS_BASE + 6]
        ch = characterize(workload_from_stream(stream))
        assert ch.footprint_lines == 4
        assert ch.bypass_lines == 2
        assert ch.reuse_factor == pytest.approx(1.0)

    def test_max_accesses_caps_walk(self):
        stream = list(range(1000))
        ch = characterize(workload_from_stream(stream), max_accesses=100)
        assert ch.accesses == 100
        assert ch.footprint_lines == 100

    def test_footprint_mb_conversion(self):
        # 1024 lines at the default miniaturization = 1 nominal MB.
        stream = list(range(1024))
        ch = characterize(workload_from_stream(stream))
        assert ch.footprint_mb() == pytest.approx(1.0)

    def test_empty_stream_rejected(self):
        wl = workload_from_stream([1])
        with pytest.raises(TraceError):
            characterize(wl, max_accesses=0)


class TestWorkingSetKnees:
    def test_hot_set_produces_knee(self):
        profiler = StackDistanceProfiler()
        # 32 hot lines swept 50 times: a strong knee at 32 lines.
        for __ in range(50):
            profiler.consume(range(32))
        knees = working_set_knees(profiler)
        assert 32 in knees

    def test_streaming_has_no_knee(self):
        profiler = StackDistanceProfiler()
        profiler.consume(range(5000))  # no reuse at all
        assert working_set_knees(profiler) == []

    def test_empty_profiler(self):
        assert working_set_knees(StackDistanceProfiler()) == []


class TestCatalogFootprints:
    """The declared Table II footprints match what the traces touch.

    The sweep family traces only the *hot* working set (one-shot traffic
    is either bypassed or absent), so the measured footprint must match
    the spec's hot_mb; hotcold/stream footprints match fp within the
    prefix sampled.
    """

    @pytest.mark.parametrize("abbr", ["dct", "lu", "bp"])
    def test_sweep_footprint_matches_hot_set(self, abbr):
        from repro.workloads import STRONG_SCALING, build_trace

        spec = STRONG_SCALING[abbr]
        ch = characterize(build_trace(spec))
        hot_mb = spec.param("hot_mb", spec.footprint_mb)
        assert ch.footprint_mb() == pytest.approx(hot_mb, rel=0.05)
        assert ch.reuse_factor > 2.0  # the super-linear prerequisite

    def test_ht_has_no_reuse(self):
        from repro.workloads import STRONG_SCALING, build_trace

        ch = characterize(build_trace(STRONG_SCALING["ht"]),
                          max_accesses=50000)
        assert ch.reuse_factor < 1.1  # "almost zero data reuse" (paper)

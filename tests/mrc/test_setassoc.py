"""Set-associativity correction tests, validated against direct
set-associative simulation."""

import numpy as np
import pytest

from repro.exceptions import PredictionError
from repro.gpu.cache import SetAssocCache
from repro.mrc.setassoc import (
    associativity_correction_curve,
    hit_probability,
    set_associative_misses,
)
from repro.mrc.stack_distance import StackDistanceProfiler


class TestHitProbability:
    def test_short_distances_always_hit(self):
        assert hit_probability(0, 16, 4) == 1.0
        assert hit_probability(3, 16, 4) == 1.0

    def test_cold_never_hits(self):
        assert hit_probability(-1, 16, 4) == 0.0

    def test_monotone_in_distance(self):
        probs = [hit_probability(d, 16, 4) for d in (4, 16, 64, 256)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_more_ways_help(self):
        assert hit_probability(32, 8, 8) > hit_probability(32, 8, 2)

    def test_high_associativity_close_to_fully(self):
        # 64-way (the paper's slices): distance below capacity -> ~1.
        assert hit_probability(500, 16, 64) > 0.98

    def test_validation(self):
        with pytest.raises(PredictionError):
            hit_probability(1, 0, 4)


class TestAgainstDirectSimulation:
    @pytest.mark.parametrize("num_sets,assoc", [(8, 2), (16, 4), (4, 8)])
    def test_correction_tracks_real_cache(self, num_sets, assoc):
        rng = np.random.default_rng(7)
        stream = rng.integers(0, 200, 6000).tolist()

        profiler = StackDistanceProfiler()
        profiler.consume(stream)

        cache = SetAssocCache(num_sets, assoc)
        for line in stream:
            cache.access(line)

        predicted = set_associative_misses(
            profiler.histogram(), profiler.cold_misses, num_sets, assoc
        )
        assert predicted == pytest.approx(cache.misses, rel=0.12)

    def test_fully_associative_limit(self):
        """One set with A ways is a fully associative cache of A lines."""
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 50, 3000).tolist()
        profiler = StackDistanceProfiler()
        profiler.consume(stream)
        predicted = set_associative_misses(
            profiler.histogram(), profiler.cold_misses, num_sets=1, assoc=16
        )
        assert predicted == pytest.approx(profiler.misses_at(16), rel=1e-9)


class TestCorrectionCurve:
    def test_set_assoc_never_beats_fully_assoc(self):
        rng = np.random.default_rng(5)
        stream = rng.integers(0, 300, 5000).tolist()
        profiler = StackDistanceProfiler()
        profiler.consume(stream)
        curve = associativity_correction_curve(
            profiler.histogram(), profiler.cold_misses,
            capacities_lines=[16, 64, 256], assoc=4,
        )
        for fully, seta in curve.values():
            assert seta >= fully - 1e-9

    def test_paper_associativity_correction_is_small(self):
        """64-way slices: the fully-associative MRC is a sound proxy."""
        rng = np.random.default_rng(5)
        stream = rng.integers(0, 2000, 20000).tolist()
        profiler = StackDistanceProfiler()
        profiler.consume(stream)
        curve = associativity_correction_curve(
            profiler.histogram(), profiler.cold_misses,
            capacities_lines=[512, 1024], assoc=64,
        )
        for fully, seta in curve.values():
            assert seta <= fully * 1.05 + 1.0

    def test_validation(self):
        with pytest.raises(PredictionError):
            associativity_correction_curve({}, -1, [8], 4)
        with pytest.raises(PredictionError):
            associativity_correction_curve({}, 0, [0], 4)

"""StatStack approximation tests."""

import numpy as np
import pytest

from repro.exceptions import PredictionError
from repro.mrc.stack_distance import StackDistanceProfiler
from repro.mrc.statstack import (
    ReuseDistanceSampler,
    expected_unique,
    statstack_miss_ratios,
)


class TestReuseDistanceSampler:
    def test_forward_distances(self):
        s = ReuseDistanceSampler()
        s.consume([1, 2, 1, 1])
        # 1 reused after 1 intervening ref, then after 0.
        assert s.reuse_distances == [1, 0]
        assert s.cold_misses == 2
        assert s.accesses == 4


class TestExpectedUnique:
    def test_no_reuse_means_every_ref_unique(self):
        # All reuse distances huge -> P(RD > d) = 1 -> unique(r) = r.
        rds = np.array([10**6] * 100)
        unique = expected_unique(rds, 10)
        assert unique[5] == pytest.approx(5.0)

    def test_immediate_reuse_means_one_line(self):
        rds = np.zeros(100, dtype=np.int64)
        unique = expected_unique(rds, 10)
        # P(RD > 0) = 0: a window adds no distinct lines beyond the first.
        assert unique[10] == pytest.approx(0.0)

    def test_monotone(self):
        rng = np.random.default_rng(0)
        rds = rng.integers(0, 50, 500)
        unique = expected_unique(rds, 100)
        assert (np.diff(unique) >= -1e-12).all()

    def test_negative_window_rejected(self):
        with pytest.raises(PredictionError):
            expected_unique(np.array([1]), -1)


class TestStatstackMissRatios:
    def _cyclic_stream(self, ws, passes):
        return [i % ws for i in range(ws * passes)]

    def test_cyclic_sweep_cliff(self):
        """Cache >= working set: only cold misses; smaller: all misses."""
        stream = self._cyclic_stream(20, 10)
        sampler = ReuseDistanceSampler()
        sampler.consume(stream)
        small, large = statstack_miss_ratios(sampler, [10, 40])
        assert small == pytest.approx(1.0, abs=0.05)
        assert large == pytest.approx(20 / 200, abs=0.02)

    def test_close_to_exact_on_random_stream(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 200, 4000).tolist()
        sampler = ReuseDistanceSampler()
        sampler.consume(stream)
        exact = StackDistanceProfiler()
        exact.consume(stream)
        for capacity in (16, 64, 128):
            approx = statstack_miss_ratios(sampler, [capacity])[0]
            truth = exact.miss_ratio_at(capacity)
            assert approx == pytest.approx(truth, abs=0.08)

    def test_empty_sampler_rejected(self):
        with pytest.raises(PredictionError):
            statstack_miss_ratios(ReuseDistanceSampler(), [4])

    def test_invalid_capacity(self):
        s = ReuseDistanceSampler()
        s.consume([1, 1])
        with pytest.raises(PredictionError):
            statstack_miss_ratios(s, [0])

"""MissRateCurve data type and cliff/region analysis tests."""

import pytest

from repro.exceptions import PredictionError
from repro.mrc.cliff import CliffAnalysis, Region, analyze_regions
from repro.mrc.curve import MissRateCurve, curve_from_samples
from repro.units import MB


def curve(mpki, caps=None, name="w"):
    caps = caps or [int(2.125 * MB * 2**i) for i in range(len(mpki))]
    return MissRateCurve(name, tuple(caps), tuple(mpki))


class TestMissRateCurve:
    def test_paper_capacities_in_mb(self):
        c = curve([2.0] * 5)
        assert c.capacities_mb == (2.125, 4.25, 8.5, 17.0, 34.0)
        assert len(c) == 5

    def test_mpki_at_exact_point(self):
        c = curve([4.0, 3.0, 2.0])
        assert c.mpki_at(c.capacities_bytes[1]) == 3.0
        with pytest.raises(PredictionError):
            c.mpki_at(12345)

    def test_drop_ratios(self):
        c = curve([4.0, 2.0, 2.0])
        assert c.drop_ratios() == [2.0, 1.0]

    def test_drop_to_zero_is_infinite(self):
        c = curve([4.0, 0.0])
        assert c.drop_ratios() == [float("inf")]
        flat_zero = curve([0.0, 0.0])
        assert flat_zero.drop_ratios() == [1.0]

    def test_validation(self):
        with pytest.raises(PredictionError):
            curve([1.0])  # too few points
        with pytest.raises(PredictionError):
            MissRateCurve("w", (100, 100), (1.0, 1.0))  # non-increasing caps
        with pytest.raises(PredictionError):
            curve([1.0, -0.1])
        with pytest.raises(PredictionError):
            MissRateCurve("w", (100, 200), (1.0,))

    def test_curve_from_samples_sorts(self):
        c = curve_from_samples("w", [(200, 1.0), (100, 2.0)])
        assert c.capacities_bytes == (100, 200)
        assert c.mpki == (2.0, 1.0)

    def test_curve_from_samples_reorders_miss_ratio_with_samples(self):
        # Regression: samples were sorted by capacity but miss_ratio was
        # passed through in caller order, silently misaligning the
        # diagnostics for unsorted inputs.
        c = curve_from_samples(
            "w",
            [(200, 1.0), (100, 2.0), (400, 0.5)],
            miss_ratio=[0.2, 0.4, 0.1],
        )
        assert c.capacities_bytes == (100, 200, 400)
        assert c.mpki == (2.0, 1.0, 0.5)
        assert c.miss_ratio == (0.4, 0.2, 0.1)

    def test_curve_from_samples_sorted_input_keeps_miss_ratio(self):
        c = curve_from_samples(
            "w", [(100, 2.0), (200, 1.0)], miss_ratio=[0.4, 0.2]
        )
        assert c.miss_ratio == (0.4, 0.2)

    def test_curve_from_samples_rejects_miss_ratio_length_mismatch(self):
        with pytest.raises(PredictionError):
            curve_from_samples(
                "w", [(100, 2.0), (200, 1.0)], miss_ratio=[0.4]
            )

    def test_curve_rejects_miss_ratio_length_mismatch(self):
        with pytest.raises(PredictionError):
            MissRateCurve("w", (100, 200), (2.0, 1.0), miss_ratio=(0.4,))
        # Empty miss_ratio stays allowed (diagnostics are optional).
        c = MissRateCurve("w", (100, 200), (2.0, 1.0))
        assert c.miss_ratio == ()

    def test_as_rows(self):
        rows = curve([2.0, 1.0]).as_rows()
        assert rows == [(2.125, 2.0), (4.25, 1.0)]


class TestCliffDetection:
    def test_dct_like_cliff(self):
        """Sharp drop at the last step (Fig. 2 left)."""
        a = analyze_regions(curve([2.1, 2.1, 2.1, 2.1, 0.3]))
        assert a.has_cliff
        assert a.cliff_step == 3
        low, high = a.cliff_capacities
        assert low == 17 * MB
        assert high == 34 * MB

    def test_bfs_like_gradual_no_cliff(self):
        a = analyze_regions(curve([4.2, 4.0, 3.5, 2.7, 1.9]))
        assert not a.has_cliff
        assert a.cliff_capacities is None

    def test_pf_like_flat_no_cliff(self):
        a = analyze_regions(curve([5.2, 5.2, 5.1, 5.0, 4.8]))
        assert not a.has_cliff

    def test_negligible_mpki_drop_is_not_a_cliff(self):
        a = analyze_regions(curve([0.04, 0.01]))
        assert not a.has_cliff

    def test_first_of_multiple_drops_wins(self):
        a = analyze_regions(curve([8.0, 2.0, 2.0, 0.4, 0.4]))
        assert a.cliff_step == 0
        assert a.all_drops() == [0, 2]

    def test_threshold_validation(self):
        with pytest.raises(PredictionError):
            analyze_regions(curve([2.0, 1.0]), threshold=1.0)


class TestRegions:
    def _analysis(self):
        return analyze_regions(curve([2.1, 2.1, 2.1, 2.1, 0.3]))

    def test_region_of_each_capacity(self):
        a = self._analysis()
        caps = a.curve.capacities_bytes
        assert a.region_of(caps[0]) is Region.PRE_CLIFF
        assert a.region_of(caps[3]) is Region.PRE_CLIFF
        assert a.region_of(caps[4]) is Region.CLIFF

    def test_post_cliff_beyond_first_fit(self):
        a = analyze_regions(curve([2.1, 2.1, 2.1, 0.3, 0.3]))
        caps = a.curve.capacities_bytes
        assert a.region_of(caps[3]) is Region.CLIFF
        assert a.region_of(caps[4]) is Region.POST_CLIFF

    def test_no_cliff_everything_pre(self):
        a = analyze_regions(curve([5.0, 5.0, 5.0]))
        for cap in a.curve.capacities_bytes:
            assert a.region_of(cap) is Region.PRE_CLIFF

    def test_unknown_capacity_rejected(self):
        with pytest.raises(PredictionError):
            self._analysis().region_of(999)

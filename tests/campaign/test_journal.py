"""Campaign journal: sealing, replay, tamper detection, torn lines."""

import json
import os

import pytest

from repro.campaign import CampaignJournal, plan_digest
from repro.campaign.journal import JOURNAL_SCHEMA_VERSION, KILL_AFTER_ENV
from repro.exceptions import CampaignError

KIND = "repro-test-campaign"
PLAN = {"n": 3, "seed": 7, "scales": [8, 16], "target": 32}


def fresh(tmp_path, plan=PLAN, kind=KIND):
    return CampaignJournal.open(str(tmp_path), kind, plan, created_unix=100.0)


class TestPlanDigest:
    def test_digest_is_stable(self):
        assert plan_digest(KIND, PLAN) == plan_digest(KIND, dict(PLAN))
        assert len(plan_digest(KIND, PLAN)) == 16

    def test_digest_separates_plans_and_kinds(self):
        other = dict(PLAN, seed=8)
        assert plan_digest(KIND, PLAN) != plan_digest(KIND, other)
        assert plan_digest(KIND, PLAN) != plan_digest("other-kind", PLAN)


class TestSealAndAttach:
    def test_fresh_journal_seals_header_immediately(self, tmp_path):
        journal = fresh(tmp_path)
        lines = open(journal.path).read().splitlines()
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["kind"] == KIND
        assert header["schema_version"] == JOURNAL_SCHEMA_VERSION
        assert header["plan_digest"] == journal.digest == plan_digest(KIND, PLAN)
        assert header["plan"] == PLAN
        assert header["created_unix"] == 100.0

    def test_attach_replays_records_in_order(self, tmp_path):
        journal = fresh(tmp_path)
        journal.record("u1", "ok", {"value": 1}, recorded_unix=1.0)
        journal.record("u2", "failed", {"error": "boom"}, recorded_unix=2.0)
        attached = fresh(tmp_path)
        assert attached.units() == ["u1", "u2"]
        assert attached.completed["u1"] == {"status": "ok", "record": {"value": 1}}
        assert attached.statuses() == {"ok": 1, "failed": 1}
        assert attached.corrupt_lines == 0
        assert not attached.complete

    def test_attach_keeps_original_created_stamp(self, tmp_path):
        fresh(tmp_path)
        CampaignJournal.open(str(tmp_path), KIND, PLAN, created_unix=999.0)
        header = json.loads(open(fresh(tmp_path).path).readline())
        assert header["created_unix"] == 100.0

    def test_mark_complete_is_durable_and_idempotent(self, tmp_path):
        journal = fresh(tmp_path)
        journal.record("u1", "ok", {}, recorded_unix=1.0)
        journal.mark_complete(1, recorded_unix=2.0)
        lines_before = len(open(journal.path).readlines())
        journal.mark_complete(1, recorded_unix=3.0)
        assert len(open(journal.path).readlines()) == lines_before
        assert fresh(tmp_path).complete

    def test_record_rejects_unknown_status(self, tmp_path):
        with pytest.raises(CampaignError, match="unknown status"):
            fresh(tmp_path).record("u1", "maybe", {}, recorded_unix=1.0)


class TestTamperDetection:
    def test_different_plan_refused(self, tmp_path):
        journal = fresh(tmp_path)
        # Force the other plan into the same directory to model a
        # mislabeled or hand-moved journal.
        other = CampaignJournal(journal.directory, KIND, journal.digest)
        with pytest.raises(CampaignError, match="different\\s+plan"):
            other._replay(dict(PLAN, seed=8))

    def test_tampered_header_refused(self, tmp_path):
        journal = fresh(tmp_path)
        header = json.loads(open(journal.path).readline())
        header["kind"] = "doctored"
        with open(journal.path, "w") as fh:
            fh.write(json.dumps(header) + "\n")
        with pytest.raises(CampaignError, match="seal is broken"):
            fresh(tmp_path)

    def test_empty_journal_refused(self, tmp_path):
        journal = fresh(tmp_path)
        open(journal.path, "w").close()
        with pytest.raises(CampaignError, match="empty"):
            fresh(tmp_path)

    def test_garbage_header_refused(self, tmp_path):
        journal = fresh(tmp_path)
        with open(journal.path, "w") as fh:
            fh.write("not json at all\n")
        with pytest.raises(CampaignError, match="unreadable header"):
            fresh(tmp_path)

    def test_missing_header_line_refused(self, tmp_path):
        journal = fresh(tmp_path)
        with open(journal.path, "w") as fh:
            fh.write(json.dumps({"type": "workload"}) + "\n")
        with pytest.raises(CampaignError, match="not a header"):
            fresh(tmp_path)


class TestCorruptRecords:
    def test_torn_trailing_line_costs_one_unit(self, tmp_path):
        journal = fresh(tmp_path)
        journal.record("u1", "ok", {"value": 1}, recorded_unix=1.0)
        with open(journal.path, "a") as fh:
            fh.write('{"type": "workload", "unit": "u2", "stat')
        with pytest.warns(UserWarning, match="corrupt line"):
            attached = fresh(tmp_path)
        assert attached.corrupt_lines == 1
        assert attached.units() == ["u1"]

    def test_flipped_bit_unseals_the_record(self, tmp_path):
        journal = fresh(tmp_path)
        journal.record("u1", "ok", {"value": 1}, recorded_unix=1.0)
        lines = open(journal.path).read().splitlines()
        record = json.loads(lines[1])
        record["record"]["value"] = 2  # digest now lies
        with open(journal.path, "w") as fh:
            fh.write(lines[0] + "\n" + json.dumps(record) + "\n")
        with pytest.warns(UserWarning, match="corrupt line"):
            attached = fresh(tmp_path)
        assert "u1" not in attached.completed
        assert attached.corrupt_lines == 1

    def test_duplicate_unit_keeps_latest(self, tmp_path):
        journal = fresh(tmp_path)
        journal.record("u1", "failed", {"error": "flaky"}, recorded_unix=1.0)
        journal.record("u1", "ok", {"value": 1}, recorded_unix=2.0)
        with pytest.warns(UserWarning, match="duplicate record"):
            attached = fresh(tmp_path)
        assert attached.completed["u1"]["status"] == "ok"
        assert attached.statuses() == {"ok": 1, "failed": 0}


class TestDiscard:
    def test_discard_removes_only_this_plan(self, tmp_path):
        journal = fresh(tmp_path)
        sibling = fresh(tmp_path, plan=dict(PLAN, seed=8))
        assert CampaignJournal.discard(str(tmp_path), KIND, PLAN)
        assert not os.path.exists(journal.directory)
        assert os.path.exists(sibling.path)
        assert not CampaignJournal.discard(str(tmp_path), KIND, PLAN)


class TestKillAfterSeam:
    def test_non_integer_value_is_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv(KILL_AFTER_ENV, "banana")
        journal = fresh(tmp_path)
        with pytest.warns(UserWarning, match="not an integer"):
            journal.record("u1", "ok", {}, recorded_unix=1.0)
        assert journal.units() == ["u1"]  # and this process survived

    def test_zero_and_negative_disarm(self, tmp_path, monkeypatch):
        for raw in ("0", "-3"):
            monkeypatch.setenv(KILL_AFTER_ENV, raw)
            journal = fresh(tmp_path, plan=dict(PLAN, seed=hash(raw) % 100))
            journal.record("u1", "ok", {}, recorded_unix=1.0)

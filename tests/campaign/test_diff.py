"""first_artifact_divergence: path naming, scrubbing, strict compares."""

from repro.campaign import ArtifactDivergence, first_artifact_divergence


def test_identical_artifacts_converge():
    artifact = {"a": [1, {"b": 2.5}], "c": "x"}
    assert first_artifact_divergence(artifact, dict(artifact)) is None


def test_volatile_fields_are_scrubbed_by_default():
    ours = {"accuracy": {"mape_pct": 2.0}, "wall_s": 1.0, "created_unix": 5.0}
    theirs = {"accuracy": {"mape_pct": 2.0}, "wall_s": 9.0, "created_unix": 8.0}
    assert first_artifact_divergence(ours, theirs) is None
    found = first_artifact_divergence(ours, theirs, scrub=False)
    assert found is not None
    assert found.path == "created_unix"


def test_nested_paths_are_named():
    ours = {"workloads": [{"ipcs": [1.0, 2.0]}, {"ipcs": [3.0, 4.0]}]}
    theirs = {"workloads": [{"ipcs": [1.0, 2.0]}, {"ipcs": [3.0, 5.0]}]}
    found = first_artifact_divergence(ours, theirs)
    assert found == ArtifactDivergence("workloads[1].ipcs[1]", 4.0, 5.0)
    assert "workloads[1].ipcs[1]" in found.describe()


def test_list_length_mismatch():
    found = first_artifact_divergence({"w": [1, 2]}, {"w": [1]})
    assert found.path == "w.length"
    assert (found.ours, found.theirs) == (2, 1)


def test_absent_keys_use_sentinel():
    found = first_artifact_divergence({"a": 1}, {"a": 1, "partial": {}})
    assert found.path == "partial"
    assert found.ours == "<absent>"


def test_type_strict_leaf_compare():
    # 1 == 1.0 in Python; artifacts must not paper over the type change.
    found = first_artifact_divergence({"n": 1}, {"n": 1.0})
    assert found is not None
    assert found.path == "n"


def test_first_divergence_in_key_order():
    found = first_artifact_divergence(
        {"a": 1, "b": 2}, {"a": 9, "b": 8}
    )
    assert found.path == "a"

"""Resilience property: interrupting a zoo campaign after *any* prefix
yields a schema-valid partial artifact whose confusion cells sum to the
completed count, and resuming converges bit-identically (modulo the
scrubbed wall-time fields) to the uninterrupted artifact.

Runs against the fake-runner substrate from :mod:`tests.zoo.
test_campaign`, so every prefix of a 6-workload plan is cheap to drill.
"""

import json

import pytest

from tests.zoo.test_campaign import FakeRunner

from repro.campaign import (
    CampaignBudget,
    CampaignJournal,
    first_artifact_divergence,
)
from repro.exceptions import CampaignIncomplete, ShutdownRequested
from repro.zoo import (
    CampaignPlan,
    plan_payload,
    run_campaign,
    validate_campaign_artifact,
)
from repro.zoo.campaign import ZOO_ARTIFACT_KIND

N = 6
SEED = 9


class CountingRunner(FakeRunner):
    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.simulated = 0

    def simulate(self, *args, **kwargs):
        self.simulated += 1
        return super().simulate(*args, **kwargs)


class DrainingRunner(CountingRunner):
    """Raises ShutdownRequested once ``allowed`` simulations are spent —
    a SIGTERM landing at an exact workload boundary."""

    def __init__(self, allowed, **kwargs):
        super().__init__(**kwargs)
        self.allowed = allowed

    def simulate(self, *args, **kwargs):
        if self.simulated >= self.allowed:
            raise ShutdownRequested(signum=15)
        return super().simulate(*args, **kwargs)


def make_plan():
    return CampaignPlan(n=N, seed=SEED)


def make_journal(tmp, plan):
    return CampaignJournal.open(
        str(tmp), ZOO_ARTIFACT_KIND, plan_payload(plan), created_unix=0.0
    )


def test_every_interruption_prefix_yields_valid_resumable_artifact(tmp_path):
    plan = make_plan()
    sizes = len(plan.sizes)
    reference = run_campaign(plan, FakeRunner())
    for k in range(1, N):
        journal_dir = tmp_path / f"prefix-{k}"
        artifact = run_campaign(
            plan,
            DrainingRunner(allowed=k * sizes),
            journal=make_journal(journal_dir, plan),
        )
        # Schema-valid, JSON-serializable, and honest about the stop.
        assert validate_campaign_artifact(artifact) == []
        assert validate_campaign_artifact(
            json.loads(json.dumps(artifact))
        ) == []
        partial = artifact["partial"]
        assert partial["reason"] == "drain"
        assert partial["signum"] == 15
        assert partial["completed"] == k
        assert partial["completed"] + partial["remaining"] == partial["planned"] == N
        # Confusion cells cover exactly the completed prefix.
        cells = sum(
            sum(row.values()) for row in artifact["confusion"].values()
        )
        assert cells == len(artifact["workloads"]) == k
        assert artifact["campaign"]["workloads"] == k
        # Resuming executes only the remainder and converges.
        resumed_runner = CountingRunner()
        resumed = run_campaign(
            plan, resumed_runner, journal=make_journal(journal_dir, plan)
        )
        assert "partial" not in resumed
        assert resumed_runner.simulated == (N - k) * sizes
        assert first_artifact_divergence(resumed, reference) is None


def test_stop_before_first_workload_is_incomplete_not_an_artifact(tmp_path):
    plan = make_plan()
    with pytest.raises(CampaignIncomplete) as excinfo:
        run_campaign(
            plan, DrainingRunner(allowed=0), journal=make_journal(tmp_path, plan)
        )
    assert excinfo.value.reason == "drain"
    # Nothing was sealed; the same journal then runs to completion.
    resumed = run_campaign(plan, FakeRunner(), journal=make_journal(tmp_path, plan))
    assert "partial" not in resumed
    assert validate_campaign_artifact(resumed) == []


def test_budgeted_invocations_ratchet_to_the_same_artifact(tmp_path):
    plan = make_plan()
    reference = run_campaign(plan, FakeRunner())
    for cap in (2, 4):
        artifact = run_campaign(
            plan,
            CountingRunner(),
            journal=make_journal(tmp_path, plan),
            budget=CampaignBudget(max_workloads=cap),
        )
        assert validate_campaign_artifact(artifact) == []
        assert artifact["partial"]["reason"] == "workload-budget"
        assert artifact["partial"]["completed"] == cap
    final = run_campaign(plan, CountingRunner(), journal=make_journal(tmp_path, plan))
    assert "partial" not in final
    assert first_artifact_divergence(final, reference) is None


def test_sealed_failures_are_reused_not_retried(tmp_path):
    plan = make_plan()
    reference = run_campaign(plan, FakeRunner(fail_intents={"linear"}))
    first = run_campaign(
        plan,
        FakeRunner(fail_intents={"linear"}),
        journal=make_journal(tmp_path, plan),
        budget=CampaignBudget(max_workloads=4),
    )
    assert first["partial"]["completed"] == 4
    # The resume keeps the same fault model; sealed casualties are
    # reused as data, the remainder executes, and the final artifact
    # matches an uninterrupted run of the same campaign.
    final = run_campaign(
        plan,
        FakeRunner(fail_intents={"linear"}),
        journal=make_journal(tmp_path, plan),
    )
    assert "partial" not in final
    assert len(final["failures"]) == len(reference["failures"]) == 2
    assert first_artifact_divergence(final, reference) is None


def test_completed_journal_replays_without_any_execution(tmp_path):
    plan = make_plan()
    reference = run_campaign(plan, FakeRunner())
    journal = make_journal(tmp_path, plan)
    run_campaign(plan, FakeRunner(), journal=journal)
    assert journal.complete
    replay_runner = CountingRunner()
    replayed = run_campaign(
        plan, replay_runner, journal=make_journal(tmp_path, plan)
    )
    assert replay_runner.simulated == 0
    assert first_artifact_divergence(replayed, reference) is None

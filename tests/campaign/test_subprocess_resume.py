"""Crash-safety acceptance against real subprocesses: a SIGKILL mid-
campaign (via the ``REPRO_CAMPAIGN_KILL_AFTER`` chaos seam) loses
nothing — the rerun reuses every sealed workload, re-simulates zero of
them, and converges bit-identically to an uninterrupted run — and a
SIGTERM drains to exit 75 with a schema-valid partial artifact."""

import json
import os
import re
import signal
import subprocess
import sys

import pytest

from repro.campaign import first_artifact_divergence
from repro.campaign.journal import KILL_AFTER_ENV
from repro.resilience import EXIT_INTERRUPTED, EXIT_OK
from repro.zoo import validate_campaign_artifact

ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
SRC = os.path.join(ROOT, "src")
SCRIPT = os.path.join(ROOT, "scripts", "zoo_campaign.py")

N = 3
SEED = 9
WORK_SCALE = 0.25

#: One generated workload finished its sweep (progress line from the
#: campaign driver, e.g. ``  z3f9a... intent=linear measured=linear``).
_MEASURED = re.compile(r"^  z.+(measured=|FAILED)")


def campaign_env(**extra):
    env = dict(os.environ, PYTHONPATH=SRC, REPRO_NO_FSYNC="1", **extra)
    env.pop("REPRO_FAULT_INJECT", None)
    if KILL_AFTER_ENV not in extra:
        env.pop(KILL_AFTER_ENV, None)
    return env


def campaign_argv(workdir, out):
    return [
        sys.executable, "-u", SCRIPT,
        "--n", str(N), "--seed", str(SEED),
        "--work-scale", str(WORK_SCALE), "--jobs", "1",
        "--journal-dir", os.path.join(workdir, "journal"),
        "--cache-dir", os.path.join(workdir, "cache"),
        "--out", out,
    ]


def executed_workloads(stdout):
    return sum(1 for line in stdout.splitlines() if _MEASURED.match(line))


def run_campaign_process(workdir, out, **extra_env):
    return subprocess.run(
        campaign_argv(workdir, out), capture_output=True, text=True,
        timeout=600, env=campaign_env(**extra_env),
    )


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """One uninterrupted run of the test plan: exit 0 and its artifact."""
    workdir = str(tmp_path_factory.mktemp("reference"))
    out = os.path.join(workdir, "zoo.json")
    proc = run_campaign_process(workdir, out)
    assert proc.returncode == EXIT_OK, (proc.stdout, proc.stderr)
    with open(out) as handle:
        return json.load(handle)


def test_sigkill_then_rerun_converges_with_zero_resimulation(
    tmp_path, reference
):
    workdir = str(tmp_path)
    out = os.path.join(workdir, "zoo.json")

    killed = run_campaign_process(workdir, out, **{KILL_AFTER_ENV: "1"})
    assert killed.returncode == -signal.SIGKILL, (killed.stdout, killed.stderr)
    assert not os.path.exists(out)
    # The journal survived the kill: sealed header plus exactly the one
    # workload record that became durable before the SIGKILL landed.
    journal_root = os.path.join(workdir, "journal")
    (digest_dir,) = os.listdir(journal_root)
    journal_path = os.path.join(journal_root, digest_dir, "journal.jsonl")
    lines = [
        json.loads(line)
        for line in open(journal_path).read().splitlines()
        if line.strip()
    ]
    assert [record["type"] for record in lines] == ["header", "workload"]

    resumed = run_campaign_process(workdir, out)
    assert resumed.returncode == EXIT_OK, (resumed.stdout, resumed.stderr)
    assert f"resume: reused 1 of {N} workload(s)" in resumed.stdout
    # Zero re-simulated workloads: only the N-1 unsealed ones ran.
    assert executed_workloads(resumed.stdout) == N - 1
    with open(out) as handle:
        artifact = json.load(handle)
    assert validate_campaign_artifact(artifact) == []
    assert "partial" not in artifact
    assert first_artifact_divergence(artifact, reference) is None


def test_sigterm_drains_to_exit_75_with_valid_partial_artifact(tmp_path):
    workdir = str(tmp_path)
    out = os.path.join(workdir, "zoo.json")
    proc = subprocess.Popen(
        campaign_argv(workdir, out), stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=campaign_env(),
    )
    try:
        # SIGTERM the moment the first workload lands: its record is
        # sealed, the rest of the sweep drains at the unit boundary.
        head = []
        for line in proc.stdout:
            head.append(line)
            if _MEASURED.match(line):
                proc.send_signal(signal.SIGTERM)
                break
        tail, err = proc.communicate(timeout=600)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    stdout = "".join(head) + tail
    assert proc.returncode == EXIT_INTERRUPTED, (stdout, err)

    with open(out) as handle:
        artifact = json.load(handle)
    assert validate_campaign_artifact(artifact) == []
    partial = artifact["partial"]
    assert partial["reason"] == "drain"
    assert partial["signum"] == signal.SIGTERM
    assert 1 <= partial["completed"] < N
    cells = sum(sum(row.values()) for row in artifact["confusion"].values())
    assert cells == len(artifact["workloads"])
    assert len(artifact["workloads"]) + len(artifact["failures"]) == \
        partial["completed"]

    # Rerunning the same command finishes the campaign.
    resumed = run_campaign_process(workdir, out)
    assert resumed.returncode == EXIT_OK, (resumed.stdout, resumed.stderr)
    with open(out) as handle:
        final = json.load(handle)
    assert "partial" not in final
    assert validate_campaign_artifact(final) == []

"""run_units: plan-order execution, reuse, budgets, drain, scrubbing."""

import itertools

import pytest

from repro.campaign import (
    CampaignBudget,
    CampaignJournal,
    run_units,
    scrub_artifact,
)
from repro.exceptions import ShutdownRequested

KIND = "repro-test-campaign"
PLAN = {"n": 3}
UNITS = ["ua", "ub", "uc"]


def ok_execute(unit):
    return "ok", {"unit": unit, "value": len(unit)}


def journal_for(tmp_path):
    return CampaignJournal.open(str(tmp_path), KIND, PLAN, created_unix=0.0)


class TestExecution:
    def test_executes_every_unit_in_plan_order(self):
        summary = run_units(UNITS, ok_execute)
        assert [o.unit for o in summary.outcomes] == UNITS
        assert summary.executed == 3
        assert summary.reused == 0
        assert summary.stopped is None
        assert not summary.partial
        assert summary.remaining == []

    def test_failed_status_is_data_not_fatal(self):
        def execute(unit):
            if unit == "ub":
                return "failed", {"error": "boom"}
            return ok_execute(unit)

        summary = run_units(UNITS, execute)
        assert [o.status for o in summary.outcomes] == ["ok", "failed", "ok"]
        assert summary.completed == 3

    def test_journal_seals_each_unit_and_completion(self, tmp_path):
        journal = journal_for(tmp_path)
        run_units(UNITS, ok_execute, journal=journal)
        assert journal.complete
        attached = journal_for(tmp_path)
        assert attached.units() == UNITS
        assert attached.complete

    def test_resume_reuses_sealed_units_without_execute(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.record("ua", "ok", {"unit": "ua", "value": 2}, recorded_unix=1.0)
        journal.record("ub", "failed", {"error": "boom"}, recorded_unix=2.0)
        executed = []

        def execute(unit):
            executed.append(unit)
            return ok_execute(unit)

        summary = run_units(UNITS, execute, journal=journal_for(tmp_path))
        assert executed == ["uc"]
        assert summary.reused == 2
        assert summary.executed == 1
        # Reuse preserves plan order and sealed statuses verbatim.
        assert [(o.unit, o.status, o.reused) for o in summary.outcomes] == [
            ("ua", "ok", True), ("ub", "failed", True), ("uc", "ok", False),
        ]


class TestBudgets:
    def test_workload_budget_counts_reused_units(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.record("ua", "ok", {}, recorded_unix=1.0)
        journal.record("ub", "ok", {}, recorded_unix=2.0)
        summary = run_units(
            UNITS, ok_execute, journal=journal_for(tmp_path),
            budget=CampaignBudget(max_workloads=2),
        )
        assert summary.stopped == "workload-budget"
        assert summary.completed == summary.reused == 2
        assert summary.executed == 0
        assert summary.remaining == ["uc"]

    def test_wall_budget_never_drops_sealed_units(self, tmp_path):
        journal = journal_for(tmp_path)
        journal.record("ua", "ok", {}, recorded_unix=1.0)
        ticks = itertools.count()
        summary = run_units(
            UNITS, ok_execute, journal=journal_for(tmp_path),
            budget=CampaignBudget(max_wall_s=0.0),
            clock=lambda: next(ticks),
        )
        # The budget was exhausted before the first unit, yet the sealed
        # one is still reused; the stop lands on the first unsealed unit.
        assert [o.unit for o in summary.outcomes] == ["ua"]
        assert summary.reused == 1
        assert summary.stopped == "wall-budget"
        assert summary.remaining == ["ub", "uc"]

    def test_workload_budget_wins_over_wall_budget(self):
        budget = CampaignBudget(max_wall_s=0.0, max_workloads=0)
        assert budget.exceeded(0, 1.0) == "workload-budget"

    def test_within_budget_returns_none(self):
        budget = CampaignBudget(max_wall_s=10.0, max_workloads=5)
        assert budget.exceeded(4, 9.0) is None

    def test_budget_stop_does_not_mark_complete(self, tmp_path):
        run_units(
            UNITS, ok_execute, journal=journal_for(tmp_path),
            budget=CampaignBudget(max_workloads=1),
        )
        assert not journal_for(tmp_path).complete


class TestDrain:
    def test_shutdown_becomes_a_clean_drain(self, tmp_path):
        def execute(unit):
            if unit == "ub":
                raise ShutdownRequested(signum=15)
            return ok_execute(unit)

        journal = journal_for(tmp_path)
        summary = run_units(UNITS, execute, journal=journal)
        assert summary.stopped == "drain"
        assert summary.signum == 15
        assert [o.unit for o in summary.outcomes] == ["ua"]
        assert summary.remaining == ["ub", "uc"]
        assert not journal.complete
        # The completed prefix is sealed: a resume executes the rest.
        resumed = run_units(UNITS, ok_execute, journal=journal_for(tmp_path))
        assert resumed.reused == 1
        assert resumed.executed == 2
        assert resumed.stopped is None

    def test_other_exceptions_are_campaign_fatal(self):
        def execute(unit):
            raise ValueError("driver bug")

        with pytest.raises(ValueError, match="driver bug"):
            run_units(UNITS, execute)


class TestScrub:
    def test_volatile_fields_dropped_recursively(self):
        artifact = {
            "wall_s": 1.5,
            "accuracy": {"mape_pct": 2.0, "created_unix": 123.0},
            "workloads": [{"ipc": 3.0, "wall_time_s": 0.5}],
        }
        assert scrub_artifact(artifact) == {
            "accuracy": {"mape_pct": 2.0},
            "workloads": [{"ipc": 3.0}],
        }

    def test_custom_volatile_set(self):
        artifact = {"keep": 1, "drop": 2}
        assert scrub_artifact(artifact, volatile={"drop"}) == {"keep": 1}

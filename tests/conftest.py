"""Shared test fixtures: fast durable writes, clean resilience state.

``REPRO_NO_FSYNC=1`` skips the fsync calls (not the atomicity) that the
durable writers in :mod:`repro.fsio` otherwise issue on every append —
across a few thousand tests the sync cost dominates the suite.  The
fsync code paths themselves are covered by :mod:`tests.test_fsio`,
which re-enables them explicitly.

The autouse fixture resets the process-wide resilience singletons
(shutdown coordinator, disk guard, io-fault budgets) around every test
so one test's signal or injected-fault state can never leak into the
next.
"""

import os

import pytest

os.environ.setdefault("REPRO_NO_FSYNC", "1")

from repro.analysis.faults import reset_io_faults  # noqa: E402
from repro.resilience import get_coordinator, reset_disk_guard  # noqa: E402


@pytest.fixture(autouse=True)
def _clean_resilience_state():
    get_coordinator().reset()
    reset_disk_guard()
    reset_io_faults()
    yield
    coordinator = get_coordinator()
    coordinator.uninstall()
    coordinator.reset()
    reset_disk_guard()
    reset_io_faults()

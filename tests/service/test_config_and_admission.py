"""Service config resolution (tolerant env, strict combinations) and
the admission-side helpers: the 429 backoff hint and the live breaker's
seed-from-manifest / reopen / close behaviour."""

import json

import pytest

from repro.analysis.faults import RunOutcome
from repro.service.admission import ServiceBreaker, retry_after_hint
from repro.service.config import (
    DEFAULT_DEADLINE_ENV,
    DEFAULT_QUEUE_DEPTH,
    QUEUE_DEPTH_ENV,
    WORKERS_MAX_ENV,
    WORKERS_MIN_ENV,
    ServiceConfig,
)


class TestServiceConfig:
    def test_env_knobs_resolve(self, monkeypatch):
        monkeypatch.setenv(QUEUE_DEPTH_ENV, "16")
        monkeypatch.setenv(WORKERS_MIN_ENV, "2")
        monkeypatch.setenv(WORKERS_MAX_ENV, "6")
        monkeypatch.setenv(DEFAULT_DEADLINE_ENV, "12.5")
        config = ServiceConfig.from_env()
        assert config.queue_depth == 16
        assert (config.workers_min, config.workers_max) == (2, 6)
        assert config.default_deadline_s == 12.5

    def test_garbage_env_degrades_with_warning(self, monkeypatch):
        monkeypatch.setenv(QUEUE_DEPTH_ENV, "many")
        with pytest.warns(UserWarning, match=QUEUE_DEPTH_ENV):
            config = ServiceConfig.from_env()
        assert config.queue_depth == DEFAULT_QUEUE_DEPTH

    def test_env_max_below_min_is_clamped_not_fatal(self, monkeypatch):
        monkeypatch.setenv(WORKERS_MIN_ENV, "4")
        monkeypatch.setenv(WORKERS_MAX_ENV, "2")
        config = ServiceConfig.from_env()
        assert config.workers_max >= config.workers_min == 4

    def test_overrides_win_and_bad_combinations_raise(self, monkeypatch):
        monkeypatch.delenv(QUEUE_DEPTH_ENV, raising=False)
        config = ServiceConfig.from_env(queue_depth=5, workers_min=2)
        assert config.queue_depth == 5 and config.workers_min == 2
        # Explicit contradictions are not knobs to degrade.
        with pytest.raises(ValueError, match="workers_max"):
            ServiceConfig(workers_min=4, workers_max=2)
        with pytest.raises(ValueError, match="queue_depth"):
            ServiceConfig(queue_depth=0)
        with pytest.raises(ValueError, match="default_deadline_s"):
            ServiceConfig(default_deadline_s=0)


class TestRetryAfterHint:
    def test_scales_with_backlog_over_drain_rate(self):
        assert retry_after_hint(10, workers=2, mean_run_s=2.0) == 10.0

    def test_clamped_to_floor_and_ceiling(self):
        assert retry_after_hint(0, 4, 1.0) == 1.0
        assert retry_after_hint(1000, 1, 30.0) == 60.0

    def test_degenerate_inputs_stay_sane(self):
        assert retry_after_hint(5, workers=0, mean_run_s=0.0) >= 1.0


def outcome(key, status, shard="va"):
    return RunOutcome(key=key, kind="sim", shard=shard, status=status, attempts=1)


class TestServiceBreaker:
    def test_seeds_streaks_from_the_batch_manifest(self, tmp_path):
        root = tmp_path / "failures"
        root.mkdir()
        records = [
            {"key": "sick", "status": "failed"},
            {"key": "sick", "status": "timeout"},
            {"key": "healed", "status": "failed"},
            {"key": "healed", "status": "ok"},
        ]
        (root / "va.jsonl").write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        breaker = ServiceBreaker(str(root), threshold=2)
        assert breaker.open_for("sick")
        assert not breaker.open_for("healed")

    def test_trips_then_success_closes_with_an_ok_record(self, tmp_path):
        root = tmp_path / "failures"
        breaker = ServiceBreaker(str(root), threshold=2)
        breaker.record(outcome("cfg", "failed"))
        assert not breaker.open_for("cfg")
        breaker.record(outcome("cfg", "timeout"))
        assert breaker.open_for("cfg") and breaker.trips == 1
        breaker.record(outcome("cfg", "ok"))
        assert not breaker.open_for("cfg")
        statuses = [
            json.loads(line)["status"]
            for line in (root / "va.jsonl").read_text().splitlines()
        ]
        assert statuses == ["failed", "timeout", "ok"]

    def test_success_without_a_streak_stays_out_of_the_manifest(
        self, tmp_path
    ):
        root = tmp_path / "failures"
        breaker = ServiceBreaker(str(root), threshold=2)
        breaker.record(outcome("clean", "ok"))
        assert not (root / "va.jsonl").exists()

    def test_interrupted_is_manifested_without_counting(self, tmp_path):
        root = tmp_path / "failures"
        breaker = ServiceBreaker(str(root), threshold=1)
        breaker.record(outcome("cfg", "interrupted"))
        assert not breaker.open_for("cfg")
        (line,) = (root / "va.jsonl").read_text().splitlines()
        assert json.loads(line)["status"] == "interrupted"

    def test_threshold_zero_disables(self, tmp_path):
        breaker = ServiceBreaker(str(tmp_path / "failures"), threshold=0)
        for _ in range(5):
            breaker.record(outcome("cfg", "failed"))
        assert not breaker.open_for("cfg")
        assert breaker.snapshot()["enabled"] is False

    def test_snapshot_counts_open_configs(self, tmp_path):
        breaker = ServiceBreaker(str(tmp_path / "failures"), threshold=1)
        breaker.record(outcome("one", "failed"))
        breaker.record(outcome("two", "oom"))
        snap = breaker.snapshot()
        assert snap["open_configs"] == 2 and snap["trips"] == 2
        assert snap["threshold"] == 1

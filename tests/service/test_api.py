"""Wire-schema validation: every malformed /predict body is a 400 that
names the offending field; valid bodies map 1:1 onto RunRequests."""

import json

import pytest

from repro.service.api import (
    MRC_METHODS,
    ApiError,
    parse_prediction_request,
)


def body(**fields):
    return json.dumps(fields).encode()


class TestValidBodies:
    def test_minimal_sim(self):
        request = parse_prediction_request(
            body(kind="sim", benchmark="va", size=8)
        )
        assert request.kind == "sim"
        assert request.benchmark == "va"
        assert request.size == 8
        assert request.work_scale == 1.0
        assert request.deadline_s is None
        run = request.to_run_request()
        assert run.key and run.spec.abbr == "va"

    def test_defaults_kind_sim_and_method_stack(self):
        request = parse_prediction_request(body(benchmark="va", size=8))
        assert request.kind == "sim" and request.method == "stack"

    def test_mrc_with_method(self):
        for method in MRC_METHODS:
            request = parse_prediction_request(
                body(kind="mrc", benchmark="va", method=method)
            )
            assert request.size == 0 and request.method == method

    def test_full_request_round_trips(self):
        request = parse_prediction_request(
            body(
                kind="mcm", benchmark="bfs", size=4, work_scale=0.5,
                seed=7, weak=True, deadline_s=2.5,
                idempotency_key="retry-token-1",
            )
        )
        assert request.weak is True
        assert request.deadline_s == 2.5
        assert request.idempotency_key == "retry-token-1"

    def test_distinct_configs_get_distinct_keys(self):
        first = parse_prediction_request(body(benchmark="va", size=8))
        second = parse_prediction_request(body(benchmark="va", size=8, seed=1))
        assert first.to_run_request().key != second.to_run_request().key


class TestRejectedBodies:
    @pytest.mark.parametrize(
        "raw, needle",
        [
            (b"not json", "not valid JSON"),
            (b"[1, 2]", "JSON object"),
            (b'{"benchmrk": "va"}', "benchmrk"),
            (b'{"kind": "magic", "benchmark": "va"}', "kind"),
            (b'{"kind": "sim"}', "benchmark"),
            (b'{"benchmark": "nosuchbench", "size": 8}', "nosuchbench"),
            (b'{"benchmark": "va"}', "size"),
            (b'{"benchmark": "va", "size": true}', "size"),
            (b'{"benchmark": "va", "size": 99999}', "size"),
            (b'{"kind": "mrc", "benchmark": "va", "size": 8}', "mrc"),
            (b'{"benchmark": "va", "size": 8, "work_scale": 0}', "work_scale"),
            (b'{"benchmark": "va", "size": 8, "seed": -1}', "seed"),
            (b'{"benchmark": "va", "size": 8, "method": "guess"}', "method"),
            (b'{"benchmark": "va", "size": 8, "deadline_s": 0}', "deadline_s"),
            (b'{"benchmark": "va", "size": 8, "deadline_s": "soon"}',
             "deadline_s"),
            (b'{"benchmark": "va", "size": 8, "weak": "yes"}', "weak"),
            (b'{"benchmark": "va", "size": 8, "idempotency_key": ""}',
             "idempotency_key"),
        ],
    )
    def test_rejection_names_the_field(self, raw, needle):
        with pytest.raises(ApiError, match=needle) as excinfo:
            parse_prediction_request(raw)
        assert excinfo.value.status == 400

    def test_oversized_idempotency_key(self):
        with pytest.raises(ApiError, match="idempotency_key"):
            parse_prediction_request(
                body(benchmark="va", size=8, idempotency_key="x" * 257)
            )

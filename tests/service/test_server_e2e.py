"""One in-process service lifetime over real HTTP: cold run, warm
cache hit, request validation at the wire, health endpoints, idempotent
retry coalescing and a clean stop.

The heavier failure modes (worker death, hangs, overload, SIGTERM
drain) live in ``scripts/service_chaos.py`` — this test guards the
happy-path wiring cheaply enough for tier 1.  One server boot serves
every assertion: worker spawn costs ~1s and is the dominant term.
"""

import asyncio
import http.client
import json

from repro.service import PredictionService, ServiceConfig


def post(port, body, path="/predict", method="POST", timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = None if body is None else json.dumps(body)
        conn.request(method, path, payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


BODY = {
    "kind": "sim",
    "benchmark": "va",
    "size": 8,
    "work_scale": 0.25,
    "deadline_s": 60,
}


async def scenario(tmp_path):
    config = ServiceConfig(
        port=0,
        store_root=str(tmp_path / "simcache"),
        workers_min=1,
        workers_max=2,
        default_deadline_s=60.0,
    )
    service = PredictionService(config)
    serve_task = asyncio.create_task(service.serve())
    while service.port is None and not serve_task.done():
        await asyncio.sleep(0.01)
    assert service.port is not None, "server never bound a port"
    loop = asyncio.get_running_loop()

    def req(*args, **kwargs):
        return loop.run_in_executor(None, lambda: post(*args, **kwargs))

    # Liveness and readiness answer immediately.
    status, _ = await req(service.port, None, "/healthz", "GET")
    assert status == 200
    status, _ = await req(service.port, None, "/readyz", "GET")
    assert status == 200

    # Wire validation: a 400 that names the field, before any worker.
    status, data = await req(service.port, {"benchmark": "va"})
    assert status == 400 and "size" in data["error"]
    status, _ = await req(service.port, None, "/nope", "GET")
    assert status == 404
    status, _ = await req(service.port, BODY, "/predict", "PUT")
    assert status == 405

    # Cold run executes; an identical concurrent request with an
    # idempotency key coalesces onto the same job instead of queueing
    # its own execution.
    tagged = dict(BODY, idempotency_key="retry-1")
    first = req(service.port, tagged)
    second = req(service.port, tagged)
    (status_a, data_a), (status_b, data_b) = await asyncio.gather(
        first, second
    )
    assert status_a == 200 and data_a["status"] == "completed"
    assert status_b == 200 and data_b["status"] == "completed"
    assert data_a["key"] == data_b["key"]
    assert data_a["result"]["cycles"] > 0

    # Warm repeat is a cache hit: served from the store, no run.
    status, data = await req(service.port, BODY)
    assert status == 200 and data["cached"] is True
    assert data["key"] == data_a["key"]

    stats = (await req(service.port, None, "/statsz", "GET"))[1]
    assert stats["queue"]["capacity"] == config.queue_depth
    assert stats["workers"]["count"] >= 1
    assert stats["store"]["hits"] >= 1
    counters = stats["metrics"]["counters"]
    assert counters.get("service.requests", 0) >= 4
    assert counters.get("service.coalesced", 0) >= 1

    service.request_stop()
    assert await asyncio.wait_for(serve_task, timeout=120) == 0


def test_service_end_to_end(tmp_path):
    asyncio.run(scenario(tmp_path))

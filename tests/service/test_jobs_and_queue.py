"""Job lifecycle and admission-queue semantics, loop-local.

The queue's contract is the service's overload story: refuse at the
bound synchronously, hand queued work to exactly one getter, skip jobs
that went terminal while waiting, and never lose a wakeup when a
timeout races a put."""

import asyncio

import pytest

from repro.analysis.parallel import RunRequest
from repro.service.jobs import (
    COMPLETED,
    DRAINED,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    Job,
    JobTable,
)
from repro.service.queue import AdmissionQueue, QueueFull
from repro.workloads import get_benchmark

VA = get_benchmark("va", weak=True)


def make_job(seed=0, spec=VA, deadline=100.0):
    return Job(RunRequest("sim", spec, size=8, seed=seed), deadline, 0.0)


class TestJobLifecycle:
    def test_finish_is_terminal_exactly_once(self):
        job = make_job()
        job.finish(COMPLETED, payload={"cycles": 1})
        assert job.terminal and job.done.is_set()
        job.finish(SHED, error="late shed must not overwrite")
        assert job.state == COMPLETED and job.payload == {"cycles": 1}

    def test_attach_extends_deadline_monotonically(self):
        job = make_job(deadline=10.0)
        job.attach(5.0)
        assert job.deadline == 10.0 and job.waiters == 2
        job.attach(20.0)
        assert job.deadline == 20.0 and job.waiters == 3

    def test_last_detach_sheds_a_queued_job_in_place(self):
        job = make_job()
        job.attach(100.0)
        job.detach()
        assert job.state == QUEUED and not job.abort.is_set()
        job.detach()
        assert job.state == SHED and job.done.is_set()
        assert "deadline expired" in job.error

    def test_last_detach_aborts_a_running_job(self):
        job = make_job()
        job.state = RUNNING
        job.detach()
        # The supervisor owns the terminal transition for running jobs;
        # detach only signals it.
        assert job.state == RUNNING and job.abort.is_set()
        assert not job.done.is_set()

    def test_detach_after_terminal_is_inert(self):
        job = make_job()
        job.finish(DRAINED)
        job.detach()
        assert job.state == DRAINED and not job.abort.is_set()


class TestJobTable:
    def test_terminal_jobs_leave_the_key_table_lazily(self):
        table = JobTable()
        job = make_job()
        table.register(job)
        assert table.active(job.key) is job
        job.finish(COMPLETED)
        assert table.active(job.key) is None
        assert len(table) == 0

    def test_reap_only_removes_the_same_job(self):
        table = JobTable()
        first = make_job()
        table.register(first)
        first.finish(FAILED)
        replacement = make_job()
        table.register(replacement)
        table.reap(first)
        assert table.active(replacement.key) is replacement

    def test_alias_map_is_bounded_fifo(self):
        table = JobTable()
        table.MAX_ALIASES = 3
        for index in range(4):
            table.remember_alias(f"token-{index}", f"key-{index}")
        assert table.resolve_alias("token-0") is None
        assert table.resolve_alias("token-3") == "key-3"
        # Re-remembering an existing token must not evict anything.
        table.remember_alias("token-3", "key-3")
        assert table.resolve_alias("token-1") == "key-1"


class TestAdmissionQueue:
    def test_put_refuses_at_the_bound_with_a_hint(self):
        async def scenario():
            queue = AdmissionQueue(maxsize=2)
            queue.put_nowait(make_job(seed=1))
            queue.put_nowait(make_job(seed=2))
            with pytest.raises(QueueFull) as excinfo:
                queue.put_nowait(make_job(seed=3), retry_after_s=7.5)
            assert excinfo.value.depth == 2
            assert excinfo.value.retry_after_s == 7.5
            assert queue.depth == 2

        asyncio.run(scenario())

    def test_get_is_fifo_and_skips_terminal_jobs(self):
        async def scenario():
            queue = AdmissionQueue(maxsize=8)
            jobs = [make_job(seed=index) for index in range(3)]
            for job in jobs:
                queue.put_nowait(job)
            jobs[0].finish(SHED)
            jobs[1].finish(DRAINED)
            assert await queue.get(timeout=0.1) is jobs[2]
            assert await queue.get(timeout=0.05) is None

        asyncio.run(scenario())

    def test_parked_getter_wakes_on_put(self):
        async def scenario():
            queue = AdmissionQueue(maxsize=4)
            getter = asyncio.create_task(queue.get(timeout=5.0))
            await asyncio.sleep(0.01)
            job = make_job()
            queue.put_nowait(job)
            assert await asyncio.wait_for(getter, timeout=1.0) is job

        asyncio.run(scenario())

    def test_one_put_wakes_exactly_one_getter(self):
        async def scenario():
            queue = AdmissionQueue(maxsize=4)
            getters = [
                asyncio.create_task(queue.get(timeout=0.3)) for _ in range(3)
            ]
            await asyncio.sleep(0.01)
            queue.put_nowait(make_job())
            results = await asyncio.gather(*getters)
            assert sum(1 for job in results if job is not None) == 1

        asyncio.run(scenario())

    def test_timeout_racing_put_hands_the_wakeup_on(self):
        async def scenario():
            queue = AdmissionQueue(maxsize=4)
            # First getter times out immediately; the put that lands in
            # the same window must still reach the second getter.
            short = asyncio.create_task(queue.get(timeout=0.01))
            patient = asyncio.create_task(queue.get(timeout=2.0))
            await asyncio.sleep(0.02)
            job = make_job()
            queue.put_nowait(job)
            results = await asyncio.gather(short, patient)
            assert job in results

        asyncio.run(scenario())

    def test_drain_returns_only_live_jobs_and_empties(self):
        async def scenario():
            queue = AdmissionQueue(maxsize=8)
            live = make_job(seed=1)
            dead = make_job(seed=2)
            queue.put_nowait(live)
            queue.put_nowait(dead)
            dead.finish(SHED)
            drained = queue.drain()
            assert drained == [live]
            assert queue.depth == 0

        asyncio.run(scenario())

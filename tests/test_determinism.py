"""End-to-end determinism: identical inputs give bit-identical results.

Reproducibility is a first-class property of the whole stack — traces,
timing simulation (including the latency-jitter LCG), MRC collection and
prediction must be exact functions of their inputs.
"""

import pytest

from repro.gpu import GPUConfig, McmConfig, simulate, simulate_mcm
from repro.mrc import collect_miss_rate_curve
from repro.workloads import STRONG_SCALING, WEAK_SCALING, build_trace


@pytest.fixture(scope="module")
def small_spec():
    return WEAK_SCALING["va"]  # the cheapest full benchmark


class TestTimingDeterminism:
    def test_same_seed_same_cycles(self, small_spec):
        cfg = GPUConfig.paper_system(8)
        runs = [
            simulate(cfg, build_trace(small_spec, capacity_scale=cfg.capacity_scale))
            for __ in range(2)
        ]
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].thread_instructions == runs[1].thread_instructions
        assert runs[0].llc_misses == runs[1].llc_misses
        assert runs[0].memory_stall_fraction == runs[1].memory_stall_fraction

    def test_different_seed_different_timing(self, small_spec):
        cfg = GPUConfig.paper_system(8)
        a = simulate(cfg, build_trace(small_spec, seed=0,
                                      capacity_scale=cfg.capacity_scale))
        b = simulate(cfg, build_trace(small_spec, seed=1,
                                      capacity_scale=cfg.capacity_scale))
        assert a.cycles != b.cycles

    def test_mcm_deterministic(self, small_spec):
        cfg = McmConfig.paper_target().scaled(4)
        runs = [
            simulate_mcm(cfg, build_trace(
                small_spec, work_scale=4.0,
                capacity_scale=cfg.chiplet.capacity_scale))
            for __ in range(2)
        ]
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].extra["remote_fraction"] == runs[1].extra["remote_fraction"]


class TestMrcDeterminism:
    def test_curves_identical(self, small_spec):
        curves = [
            collect_miss_rate_curve(build_trace(small_spec)) for __ in range(2)
        ]
        assert curves[0].mpki == curves[1].mpki
        assert curves[0].miss_ratio == curves[1].miss_ratio


class TestTraceInstructionAccounting:
    def test_simulated_instructions_match_trace(self, small_spec):
        cfg = GPUConfig.paper_system(8)
        trace = build_trace(small_spec, capacity_scale=cfg.capacity_scale)
        expected = trace.count_instructions(cfg.threads_per_warp)
        trace2 = build_trace(small_spec, capacity_scale=cfg.capacity_scale)
        result = simulate(cfg, trace2)
        assert result.thread_instructions == expected

    def test_accesses_match_trace(self, small_spec):
        cfg = GPUConfig.paper_system(8)
        expected = build_trace(small_spec).count_accesses()
        result = simulate(cfg, build_trace(small_spec,
                                           capacity_scale=cfg.capacity_scale))
        assert result.memory_accesses == expected

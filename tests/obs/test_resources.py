"""Peak-RSS gauge and run-phase span tests."""

from repro.obs import PEAK_RSS_GAUGE, peak_rss_bytes, run_phase, sample_peak_rss
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


class TestPeakRss:
    def test_reports_positive_bytes(self):
        # A live Python process holds tens of MiB at minimum.
        assert peak_rss_bytes() > 10 * 2**20

    def test_monotonic_high_water_mark(self):
        before = peak_rss_bytes()
        ballast = bytearray(8 * 2**20)
        after = peak_rss_bytes()
        del ballast
        assert after >= before

    def test_sample_lands_in_registry_gauge(self):
        registry = MetricsRegistry()
        value = sample_peak_rss(registry)
        assert registry.gauge(PEAK_RSS_GAUGE).value == value
        assert value == peak_rss_bytes()


class TestRunPhase:
    def test_disabled_tracer_is_noop(self):
        with run_phase("bench.cold", tier="quick"):
            pass  # must not raise nor record anywhere

    def test_records_phase_category_span(self, tmp_path):
        tracer = Tracer()
        tracer.enable()
        import repro.obs.tracing as tracing
        original = tracing._TRACER
        tracing._TRACER = tracer
        try:
            with run_phase("bench.cold", tier="quick"):
                pass
        finally:
            tracing._TRACER = original
        events = tracer.events()
        assert len(events) == 1
        assert events[0]["name"] == "phase:bench.cold"
        assert events[0]["cat"] == "phase"
        assert events[0]["args"]["tier"] == "quick"

"""Structured-logging setup: idempotency, human/json formats, dynamic
stderr binding (pytest swaps ``sys.stderr`` per test)."""

import json
import logging

import pytest

from repro.obs.logging import ROOT_LOGGER, get_logger, setup_logging


@pytest.fixture(autouse=True)
def restore_logging():
    yield
    for name in (ROOT_LOGGER, "py.warnings"):
        logger = logging.getLogger(name)
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
    logging.captureWarnings(False)


class TestSetup:
    def test_idempotent_no_handler_stacking(self):
        for _ in range(3):
            setup_logging("human")
        assert len(logging.getLogger(ROOT_LOGGER).handlers) == 1

    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            setup_logging("xml")

    def test_human_format_is_bare_message(self, capsys):
        setup_logging("human")
        get_logger("cli").info("execution: 5 ok, 0 failed")
        assert capsys.readouterr().err == "execution: 5 ok, 0 failed\n"

    def test_json_format_one_object_per_line(self, capsys):
        setup_logging("json")
        log = get_logger("cli")
        log.info("first")
        log.error("second %d", 2)
        lines = capsys.readouterr().err.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["msg"] for r in records] == ["first", "second 2"]
        assert records[0]["level"] == "info"
        assert records[1]["level"] == "error"
        assert records[0]["logger"] == "repro.cli"
        assert "ts" in records[0]

    def test_dynamic_stderr_follows_capsys(self, capsys):
        # setup happened under a different stderr object in an earlier
        # test; emission must land in the *current* sys.stderr.
        setup_logging("human")
        capsys.readouterr()  # drain
        get_logger("x").warning("note")
        assert "note" in capsys.readouterr().err

    def test_get_logger_namespacing(self):
        assert get_logger("obs").name == "repro.obs"
        assert get_logger("obs").parent.name in (ROOT_LOGGER, "root")

    def test_warnings_bridge(self, capsys):
        import warnings

        setup_logging("json")
        warnings.warn("tolerated degradation")
        err = capsys.readouterr().err
        record = json.loads(err.strip().splitlines()[-1])
        assert "tolerated degradation" in record["msg"]
        assert record["logger"] == "py.warnings"

    def test_pytest_warns_still_works_after_setup(self):
        import warnings

        setup_logging("human")
        with pytest.warns(UserWarning, match="still catchable"):
            warnings.warn("still catchable")

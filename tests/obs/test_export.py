"""Trace/metrics export: Chrome ``trace_event`` schema validity,
tolerant spill merging, atomic writes, flat reports."""

import json
import os

from repro.obs.export import (
    chrome_trace_document,
    collect_events,
    metrics_report,
    read_spill_dir,
    validate_trace_events,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer


def make_tracer(**kwargs):
    t = Tracer(**kwargs)
    t.enable()
    return t


class TestChromeTrace:
    def test_document_envelope(self):
        doc = chrome_trace_document([{"name": "x"}], metadata={"run": "r1"})
        assert doc["displayTimeUnit"] == "ms"
        assert doc["traceEvents"] == [{"name": "x"}]
        assert doc["otherData"] == {"run": "r1"}

    def test_written_trace_validates(self, tmp_path):
        t = make_tracer()
        with t.span("sim", cat="sim"):
            with t.span("kernel", cat="kernel"):
                pass
        t.instant("resume", cat="checkpoint")
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), tracer=t)
        assert count == 3
        document = json.loads(path.read_text())
        assert validate_trace_events(document) == []
        cats = {e["cat"] for e in document["traceEvents"]}
        assert cats == {"sim", "kernel", "checkpoint"}

    def test_events_sorted_by_timestamp(self, tmp_path):
        t = make_tracer()
        t.complete("late", "misc", ts_us=200.0, dur_us=1.0)
        t.complete("early", "misc", ts_us=100.0, dur_us=1.0)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer=t)
        names = [
            e["name"] for e in json.loads(path.read_text())["traceEvents"]
        ]
        assert names == ["early", "late"]

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer=make_tracer())
        assert not (tmp_path / "trace.json.tmp").exists()

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.json"
        write_chrome_trace(str(path), tracer=make_tracer())
        assert path.exists()


class TestSpillMerging:
    def test_merges_spill_and_buffer(self, tmp_path):
        t = make_tracer()
        t.enable(spill_dir=str(tmp_path))
        t.instant("spilled")
        t.flush_spill()
        t.instant("buffered")
        events = collect_events(tracer=t)
        assert sorted(e["name"] for e in events) == ["buffered", "spilled"]

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        # The crash contract: a worker dying mid-write truncates the last
        # line; the reader keeps everything before it.
        path = tmp_path / "trace-123.jsonl"
        good = json.dumps({"name": "ok", "ph": "i", "ts": 1.0})
        path.write_text(good + "\n" + '{"name": "trunc')
        events = read_spill_dir(str(tmp_path))
        assert [e["name"] for e in events] == ["ok"]

    def test_missing_or_foreign_files_ignored(self, tmp_path):
        (tmp_path / "notes.txt").write_text("not a spill file")
        assert read_spill_dir(str(tmp_path)) == []
        assert read_spill_dir(str(tmp_path / "absent")) == []
        assert read_spill_dir(None) == []


class TestValidator:
    def test_rejects_bad_envelope(self):
        assert validate_trace_events([]) != []
        assert validate_trace_events({"traceEvents": "nope"}) != []

    def test_flags_bad_events(self):
        doc = {"traceEvents": [
            {"ph": "Z", "name": 3, "ts": "then"},
            "not-an-object",
        ]}
        problems = validate_trace_events(doc)
        assert any("unknown phase" in p for p in problems)
        assert any("missing name" in p for p in problems)
        assert any("not an object" in p for p in problems)

    def test_complete_event_needs_dur(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "ts": 1.0, "pid": 1, "tid": 1},
        ]}
        assert any("dur" in p for p in validate_trace_events(doc))


class TestMetricsExport:
    def test_write_and_reload(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("runs", 2)
        reg.set_gauge("enabled", 1.0)
        reg.observe("us", 5.0)
        path = tmp_path / "metrics.json"
        snap = write_metrics(str(path), reg)
        assert json.loads(path.read_text()) == snap
        assert snap["counters"]["runs"] == 2
        assert snap["histograms"]["us"]["p99"] == 5.0

    def test_extra_registries_are_prefixed(self, tmp_path):
        main, runner = MetricsRegistry(), MetricsRegistry()
        main.inc("cache.hits", 1)
        runner.inc("exec.ok", 3)
        snap = write_metrics(
            str(tmp_path / "m.json"), main, extra={"runner": runner}
        )
        assert snap["counters"] == {"cache.hits": 1, "runner.exec.ok": 3}

    def test_report_text(self):
        reg = MetricsRegistry()
        reg.inc("cache.hits", 7)
        reg.set_gauge("obs.enabled", 1.0)
        reg.observe("span.run.us", 100.0)
        text = metrics_report(reg.snapshot())
        assert "counter" in text and "cache.hits" in text
        assert "gauge" in text and "obs.enabled" in text
        assert "histogram" in text and "p95=" in text

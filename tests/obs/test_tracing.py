"""Tracer behavior: span nesting and ordering, disabled no-op cost,
bounded buffers, JSONL spill, fork inheritance."""

import json
import os
import time

import pytest

from repro.obs.tracing import NULL_SPAN, SPILL_BASENAME, Tracer, get_tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


class TestDisabled:
    def test_disabled_span_is_the_shared_null_span(self):
        t = Tracer()
        assert t.span("x") is NULL_SPAN
        with t.span("x"):
            pass
        assert t.events() == []

    def test_disabled_records_nothing(self):
        t = Tracer()
        t.complete("x", "misc", 0.0, 1.0)
        t.instant("y")
        assert t.events() == []


class TestSpans:
    def test_complete_event_fields(self, tracer):
        with tracer.span("work", cat="run", key="k1"):
            pass
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["cat"] == "run"
        assert event["ph"] == "X"
        assert event["pid"] == os.getpid()
        assert isinstance(event["tid"], int)
        assert event["dur"] >= 0.0
        assert event["args"] == {"key": "k1"}

    def test_nesting_contains_child(self, tracer):
        # Chrome infers nesting from ts/dur containment: the parent span
        # must fully cover its child on the timeline.
        with tracer.span("outer"):
            time.sleep(0.002)
            with tracer.span("inner"):
                time.sleep(0.002)
            time.sleep(0.002)
        inner, outer = tracer.events()  # inner exits (records) first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1.0

    def test_sequential_spans_ordered(self, tracer):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = tracer.events()
        assert a["name"] == "a"
        assert a["ts"] <= b["ts"]

    def test_span_records_on_exception(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (event,) = tracer.events()
        assert event["name"] == "doomed"

    def test_instant_event(self, tracer):
        tracer.instant("marker", cat="run", args={"n": 1})
        (event,) = tracer.events()
        assert event["ph"] == "i"
        assert event["s"] == "p"
        assert event["args"] == {"n": 1}

    def test_metrics_sink_observes_span_durations(self, tracer):
        from repro.obs.metrics import MetricsRegistry

        tracer.metrics = MetricsRegistry()
        with tracer.span("x", cat="cache"):
            pass
        assert tracer.metrics.histogram("span.cache.us").count == 1

    def test_now_us_is_monotonic_nondecreasing(self, tracer):
        stamps = [tracer.now_us() for _ in range(100)]
        assert stamps == sorted(stamps)


class TestBuffering:
    def test_overflow_without_spill_drops_oldest(self):
        t = Tracer(buffer_limit=10)
        t.enable()
        for i in range(25):
            t.instant(f"e{i}")
        assert len(t.events()) < 10
        assert t.dropped > 0
        names = [e["name"] for e in t.events()]
        assert "e24" in names  # newest survives
        assert "e0" not in names

    def test_overflow_with_spill_writes_jsonl(self, tmp_path):
        t = Tracer(buffer_limit=10)
        t.enable(spill_dir=str(tmp_path))
        for i in range(25):
            t.instant(f"e{i}")
        assert t.dropped == 0
        spill = tmp_path / SPILL_BASENAME.format(pid=os.getpid())
        lines = spill.read_text().splitlines()
        assert len(lines) + len(t.events()) == 25
        assert all(json.loads(line)["ph"] == "i" for line in lines)

    def test_flush_spill_appends_and_clears(self, tmp_path):
        t = Tracer()
        t.enable(spill_dir=str(tmp_path))
        t.instant("one")
        assert t.flush_spill() == 1
        t.instant("two")
        assert t.flush_spill() == 1
        assert t.events() == []
        spill = tmp_path / SPILL_BASENAME.format(pid=os.getpid())
        names = [json.loads(l)["name"] for l in spill.read_text().splitlines()]
        assert names == ["one", "two"]

    def test_flush_spill_without_dir_is_noop(self, tracer):
        tracer.instant("kept")
        assert tracer.flush_spill() == 0
        assert len(tracer.events()) == 1

    def test_buffer_limit_validation(self):
        with pytest.raises(ValueError):
            Tracer(buffer_limit=0)


class TestForkSafety:
    def test_fork_drops_inherited_buffer(self, tracer, monkeypatch):
        tracer.instant("parent-event")
        assert len(tracer.events()) == 1
        # Simulate the pid change a fork produces.
        fake_pid = tracer._pid + 1
        monkeypatch.setattr(os, "getpid", lambda: fake_pid)
        assert tracer.events() == []
        tracer.instant("child-event")
        assert [e["name"] for e in tracer.events()] == ["child-event"]

    def test_forked_child_spills_only_its_own_events(self):
        # A real fork: the child must not re-report the parent's buffer.
        if not hasattr(os, "fork"):
            pytest.skip("no fork on this platform")
        import tempfile

        with tempfile.TemporaryDirectory() as spill_dir:
            t = Tracer()
            t.enable(spill_dir=spill_dir)
            t.instant("parent-only")
            pid = os.fork()
            if pid == 0:  # child
                t.instant("child-only")
                t.flush_spill()
                os._exit(0)
            os.waitpid(pid, 0)
            spilled = []
            for fname in os.listdir(spill_dir):
                with open(os.path.join(spill_dir, fname)) as fh:
                    spilled += [json.loads(line) for line in fh]
            assert [e["name"] for e in spilled] == ["child-only"]
            assert [e["name"] for e in t.events()] == ["parent-only"]


class TestGlobalTracer:
    def test_singleton(self):
        assert get_tracer() is get_tracer()

    def test_default_is_disabled(self):
        # The suite never turns the global tracer on without cleanup;
        # the disabled default is what keeps library hot paths free.
        assert get_tracer().enabled is False

"""Metrics primitives: counter bags, streaming histogram accuracy,
registry snapshots and cross-registry merges."""

import math
import random

import pytest

from repro.obs.metrics import (
    CounterBag,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestCounterBag:
    def test_add_get_and_item_access(self):
        bag = CounterBag()
        bag.add("hits")
        bag.add("hits", 2)
        bag["entries"] = 7
        assert bag["hits"] == 3
        assert bag.get("hits") == 3
        assert bag["entries"] == 7
        assert bag.get("absent", 5) == 5
        assert bag["absent"] == 0
        assert "hits" in bag and "absent" not in bag

    def test_initial_dict_is_copied(self):
        seed = {"a": 1}
        bag = CounterBag(seed)
        bag.add("a")
        assert seed["a"] == 1
        assert bag.as_dict() == {"a": 2}

    def test_as_dict_snapshots(self):
        bag = CounterBag({"a": 1})
        snap = bag.as_dict()
        bag.add("a")
        assert snap == {"a": 1}

    def test_engine_counter_is_a_counterbag(self):
        # Satellite: the engine's stat bag is a shim over the shared one.
        from repro.engine.stats import Counter

        counter = Counter()
        assert isinstance(counter, CounterBag)
        counter.add("events", 2)
        assert counter.get("events") == 2


class TestHistogram:
    def test_empty(self):
        h = Histogram("t")
        assert h.quantile(0.5) == 0.0
        assert h.summary() == {"count": 0}

    def test_single_sample_exact(self):
        h = Histogram("t")
        h.record(42.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) == pytest.approx(42.0)

    def test_endpoints_exact(self):
        h = Histogram("t")
        for v in (3.0, 8.0, 21.0, 1000.0):
            h.record(v)
        assert h.quantile(0.0) == 3.0
        assert h.quantile(1.0) == 1000.0
        assert h.min == 3.0 and h.max == 1000.0

    def test_two_samples_p95_is_the_larger(self):
        h = Histogram("t")
        h.record(5.0)
        h.record(477.0)
        assert h.quantile(0.95) == pytest.approx(477.0, rel=0.05)
        assert h.quantile(0.5) == pytest.approx(5.0, rel=0.05)

    def test_quantile_accuracy_uniform(self):
        # Streaming quantiles must stay within the documented ~4.5%
        # relative error of the exact sample quantiles.
        rng = random.Random(7)
        samples = [rng.uniform(1.0, 1e6) for _ in range(5000)]
        h = Histogram("t")
        for v in samples:
            h.record(v)
        samples.sort()
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = samples[max(0, math.ceil(q * len(samples)) - 1)]
            assert h.quantile(q) == pytest.approx(exact, rel=0.05)

    def test_quantile_accuracy_lognormal(self):
        rng = random.Random(11)
        samples = [math.exp(rng.gauss(5.0, 2.0)) for _ in range(5000)]
        h = Histogram("t")
        for v in samples:
            h.record(v)
        samples.sort()
        for q in (0.5, 0.95, 0.99):
            exact = samples[max(0, math.ceil(q * len(samples)) - 1)]
            assert h.quantile(q) == pytest.approx(exact, rel=0.05)

    def test_memory_is_bounded_by_buckets_not_samples(self):
        h = Histogram("t")
        for i in range(100_000):
            h.record(1.0 + (i % 100))
        # 1..100 spans under two decades: far fewer buckets than samples.
        assert len(h._buckets) < 100
        assert h.count == 100_000

    def test_underflow_bucket(self):
        h = Histogram("t")
        h.record(0.0)
        h.record(-3.0)
        h.record(10.0)
        assert h.count == 3
        assert h.quantile(0.0) == -3.0
        assert h.quantile(1.0) == 10.0

    def test_mean_and_summary(self):
        h = Histogram("t")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert s["sum"] == pytest.approx(6.0)
        assert set(s) == {"count", "sum", "min", "max", "mean",
                          "p50", "p95", "p99"}

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            Histogram("t", growth=1.0)
        h = Histogram("t")
        with pytest.raises(ValueError):
            h.quantile(1.5)


class TestMetricsRegistry:
    def test_handles_are_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")
        assert reg.gauge("g") is reg.gauge("g")

    def test_snapshot_shape_and_json(self):
        import json

        reg = MetricsRegistry()
        reg.inc("runs", 3)
        reg.set_gauge("enabled", 1.0)
        reg.observe("lat_us", 120.0)
        snap = json.loads(reg.to_json())
        assert snap["counters"] == {"runs": 3}
        assert snap["gauges"] == {"enabled": 1.0}
        assert snap["histograms"]["lat_us"]["count"] == 1

    def test_merge_snapshot_prefixes(self):
        reg, other = MetricsRegistry(), MetricsRegistry()
        other.inc("hits", 4)
        other.observe("us", 10.0)
        reg.merge_snapshot(other, "runner.")
        snap = reg.snapshot()
        assert snap["counters"] == {"runner.hits": 4}
        assert snap["histograms"]["runner.us"]["count"] == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

"""Profiling hooks: strictly opt-in, no-op when ``REPRO_OBS`` is unset,
fully removable, and recording the advertised span categories when on."""

import json
import os

import pytest

from repro.obs import bootstrap
from repro.obs.export import validate_trace_events
from repro.obs.metrics import get_registry
from repro.obs.profile_hooks import (
    OBS_ENV,
    SPILL_ENV,
    ensure_worker,
    install,
    obs_enabled,
    uninstall,
)
from repro.obs.tracing import get_tracer
from repro.workloads import get_benchmark


@pytest.fixture
def tiny_spec():
    return get_benchmark("va", weak=True)


@pytest.fixture
def clean_obs(monkeypatch):
    """Guarantee pristine global observability state around a test."""
    monkeypatch.delenv(OBS_ENV, raising=False)
    monkeypatch.delenv(SPILL_ENV, raising=False)
    yield
    # bootstrap() writes these straight into os.environ (workers must
    # inherit them), so monkeypatch alone cannot undo a test's opt-in.
    os.environ.pop(OBS_ENV, None)
    os.environ.pop(SPILL_ENV, None)
    uninstall()
    tracer = get_tracer()
    tracer.clear()
    tracer.spill_dir = None
    get_registry().reset()


class TestOptIn:
    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no", "No"])
    def test_falsy_values(self, value):
        assert obs_enabled(value) is False

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes"])
    def test_truthy_values(self, value):
        assert obs_enabled(value) is True

    def test_env_lookup(self, clean_obs, monkeypatch):
        assert obs_enabled() is False
        monkeypatch.setenv(OBS_ENV, "1")
        assert obs_enabled() is True


class TestNoOpWhenDisabled:
    def test_hot_paths_untouched_without_env(self, clean_obs):
        from repro.analysis.parallel import ParallelRunner
        from repro.analysis.simcache import ResultStore
        from repro.checkpoint import Checkpointer
        from repro.engine import kernel as engine_kernel

        flush = ResultStore.flush
        save = Checkpointer.save
        batch = ParallelRunner.run_batch_report
        ensure_worker()  # REPRO_OBS unset: must install nothing
        assert ResultStore.flush is flush
        assert Checkpointer.save is save
        assert ParallelRunner.run_batch_report is batch
        assert engine_kernel._run_observer is None
        assert get_tracer().enabled is False

    def test_simulation_records_nothing_when_disabled(
        self, clean_obs, tiny_spec
    ):
        from repro.analysis.runner import CachedRunner

        runner = CachedRunner(cache_path=None)
        runner.simulate(tiny_spec, 8)
        assert get_tracer().events() == []
        assert get_registry().snapshot()["counters"] == {}


class TestInstallUninstall:
    def test_install_patches_and_uninstall_restores(self, clean_obs):
        from repro.analysis.simcache import ResultStore
        from repro.checkpoint import Checkpointer
        from repro.engine import kernel as engine_kernel

        flush = ResultStore.flush
        save = Checkpointer.save
        install()
        assert ResultStore.flush is not flush
        assert Checkpointer.save is not save
        assert engine_kernel._run_observer is not None
        assert get_tracer().enabled is True
        uninstall()
        assert ResultStore.flush is flush
        assert Checkpointer.save is save
        assert engine_kernel._run_observer is None
        assert get_tracer().enabled is False

    def test_install_is_idempotent(self, clean_obs):
        from repro.analysis.simcache import ResultStore

        install()
        once = ResultStore.flush
        install()
        assert ResultStore.flush is once  # not double-wrapped
        uninstall()

    def test_ensure_worker_arms_when_env_set(self, clean_obs, monkeypatch):
        from repro.engine import kernel as engine_kernel

        monkeypatch.setenv(OBS_ENV, "1")
        ensure_worker()
        assert engine_kernel._run_observer is not None

    def test_installed_hooks_record_metrics(self, clean_obs, tiny_spec):
        from repro.analysis.runner import CachedRunner

        install()
        runner = CachedRunner(cache_path=None)
        runner.simulate(tiny_spec, 8)
        counters = get_registry().counters_dict()
        assert counters["engine.events"] > 0
        assert get_registry().histogram("engine.run_us").count > 0
        cats = {e["cat"] for e in get_tracer().events()}
        assert "kernel" in cats and "sim" in cats and "run" in cats


class TestBootstrapEndToEnd:
    def test_artifacts_written_and_valid(
        self, clean_obs, tiny_spec, tmp_path, monkeypatch
    ):
        # The acceptance path: a small run with trace/metrics outputs
        # yields Chrome-loadable JSON spanning the advertised categories
        # plus a metrics snapshot with counters/gauges/histograms.
        monkeypatch.chdir(tmp_path)
        from repro.analysis.runner import CachedRunner

        trace_out = str(tmp_path / "trace.json")
        metrics_out = str(tmp_path / "metrics.json")
        session = bootstrap(trace_out=trace_out, metrics_out=metrics_out)
        assert session.active
        runner = CachedRunner(cache_path=str(tmp_path / "cache"))
        runner.simulate(tiny_spec, 8)
        runner.simulate(tiny_spec, 8)  # one hit
        runner.flush()
        session.finalize(extra_metrics={"runner": runner.metrics})

        document = json.loads((tmp_path / "trace.json").read_text())
        assert validate_trace_events(document) == []
        cats = {e["cat"] for e in document["traceEvents"]}
        assert {"run", "kernel", "cache", "checkpoint"} <= cats

        snapshot = json.loads((tmp_path / "metrics.json").read_text())
        assert snapshot["counters"]["runner.runner.hits"] == 1
        assert snapshot["counters"]["runner.runner.misses"] == 1
        assert snapshot["gauges"]["obs.enabled"] == 1.0
        quantiles = snapshot["histograms"]["span.kernel.us"]
        assert quantiles["count"] > 0 and "p95" in quantiles
        # The spill directory is cleaned up after a successful export.
        assert not os.path.isdir(trace_out + ".spill")

    def test_inactive_without_env_or_outputs(self, clean_obs):
        session = bootstrap()
        assert session.active is False
        assert get_tracer().enabled is False
        session.finalize()  # must be a harmless no-op


class TestExecutionHealthParity:
    def test_format_matches_pre_refactor_wording(self, clean_obs):
        # execution_health() became a view over the metrics registry; the
        # string scripts and CI grep must not have changed.
        from repro.analysis.faults import OK, BatchReport, RunOutcome
        from repro.analysis.runner import CachedRunner

        runner = CachedRunner(cache_path=None)
        assert runner.execution_health() == (
            "execution: 0 ok, 0 failed, 0 timed out, 0 retries, "
            "0 pool deaths"
        )
        report = BatchReport(outcomes=(
            RunOutcome(key="k", kind="sim", shard="va", status=OK,
                       attempts=2),
        ))
        runner._absorb_report(report)
        assert runner.execution_health() == (
            "execution: 1 ok, 0 failed, 0 timed out, 1 retries, "
            "0 pool deaths"
        )

    def test_stats_keeps_exec_keys(self, clean_obs):
        from repro.analysis.runner import CachedRunner

        stats = CachedRunner(cache_path=None).stats()
        for key in ("exec_ok", "exec_failed", "exec_timeout",
                    "exec_retries", "exec_pool_deaths",
                    "runner_hits", "runner_misses"):
            assert stats[key] == 0

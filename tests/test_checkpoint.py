"""Checkpoint/resume: integrity-verified snapshots and crash recovery.

The contract under test (see repro.checkpoint and docs/ARCHITECTURE.md):

* snapshots are written atomically with a payload digest and schema
  version, and anything invalid is quarantined — never trusted, never
  fatal;
* a run killed after a snapshot resumes from it and produces a result
  bit-identical to an uninterrupted run (only ``wall_time_s`` differs);
* every failure mode (corrupt file, foreign run, disabled resume)
  degrades to a cold start with at most a warning.
"""

import dataclasses
import json
import os

import pytest

from repro.checkpoint import (
    CHECKPOINT_INTERVAL_ENV,
    SCHEMA_VERSION,
    Checkpointer,
    CheckpointPolicy,
    default_checkpoint_interval,
    parse_checkpoint_interval,
    run_digest,
)
from repro.exceptions import CheckpointError
from repro.gpu import GPUConfig, GPUSimulator, simulate
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace


def tiny_config(**overrides) -> GPUConfig:
    defaults = dict(
        num_sms=2,
        llc_slices=2,
        num_mcs=1,
        capacity_scale=1.0,
        latency_jitter=0.0,
        name="tiny",
    )
    defaults.update(overrides)
    return GPUConfig(**defaults)


def multi_kernel_workload(num_kernels=3, name="wl") -> WorkloadTrace:
    kernels = []
    for k in range(num_kernels):
        def build(cta_id, k=k):
            warps = []
            for w in range(2):
                base = (k * 64 + cta_id * 8 + w) * 4
                warps.append(
                    WarpTrace(
                        [3] * 4,
                        [base + i for i in range(4)],
                        start_offset=float(w),
                    )
                )
            return CTATrace(cta_id, warps)

        kernels.append(KernelTrace(f"{name}-k{k}", 4, 64, build))
    return WorkloadTrace(name, kernels)


def result_payload(result) -> dict:
    """Everything deterministic about a result (host time excluded)."""
    payload = dataclasses.asdict(result)
    payload.pop("wall_time_s")
    return payload


class KilledAfterCheckpoint(Exception):
    """Stand-in for a worker death right after a snapshot became durable."""


def killer(boundary: int):
    def hook(kernels_completed: int) -> None:
        if kernels_completed == boundary:
            raise KilledAfterCheckpoint(boundary)

    return hook


class TestIntervalParsing:
    def test_none_and_empty_return_default(self):
        assert parse_checkpoint_interval(None, 4) == 4
        assert parse_checkpoint_interval("", 4) == 4

    def test_plain_integer(self):
        assert parse_checkpoint_interval("3") == 3
        assert parse_checkpoint_interval(2) == 2

    def test_zero_disables_without_warning(self):
        assert parse_checkpoint_interval("0", 5) == 0

    def test_garbage_warns_and_defaults(self):
        with pytest.warns(UserWarning, match="not an integer"):
            assert parse_checkpoint_interval("banana", 2) == 2

    def test_negative_warns_and_defaults(self):
        with pytest.warns(UserWarning, match=">= 0"):
            assert parse_checkpoint_interval("-3", 2) == 2

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(CHECKPOINT_INTERVAL_ENV, "7")
        assert default_checkpoint_interval() == 7
        monkeypatch.setenv(CHECKPOINT_INTERVAL_ENV, "nope")
        with pytest.warns(UserWarning, match="not an integer"):
            assert default_checkpoint_interval() == 1


class TestCheckpointer:
    RUN_KEY = "sim|digest-a|digest-b"

    def make(self, tmp_path, **kwargs) -> Checkpointer:
        return Checkpointer(
            str(tmp_path / "run"), run_key=self.RUN_KEY, **kwargs
        )

    def snapshot(self, kernels_completed: int, cycles: float = 100.0) -> dict:
        return {
            "kernels_completed": kernels_completed,
            "num_kernels": 3,
            "cycles": cycles,
            "state": {"accesses": 42},
        }

    def test_save_load_roundtrip(self, tmp_path):
        ck = self.make(tmp_path)
        assert ck.save(self.snapshot(1, cycles=123.0))
        loaded = ck.load_latest()
        assert loaded["kernels_completed"] == 1
        assert loaded["cycles"] == 123.0
        assert loaded["run_key"] == self.RUN_KEY
        assert ck.quarantined == 0

    def test_interval_below_one_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            self.make(tmp_path, interval=0)

    def test_should_checkpoint_respects_interval(self, tmp_path):
        ck = self.make(tmp_path, interval=2)
        assert not ck.should_checkpoint(1)
        assert ck.should_checkpoint(2)
        assert not ck.should_checkpoint(3)
        assert ck.should_checkpoint(4)

    def test_load_latest_prefers_newest(self, tmp_path):
        ck = self.make(tmp_path)
        ck.save(self.snapshot(1, cycles=10.0))
        ck.save(self.snapshot(2, cycles=20.0))
        assert ck.load_latest()["kernels_completed"] == 2

    def test_corrupt_file_falls_back_to_older(self, tmp_path):
        ck = self.make(tmp_path)
        ck.save(self.snapshot(1, cycles=10.0))
        ck.save(self.snapshot(2, cycles=20.0))
        with open(ck.path_for(2), "w") as fh:
            fh.write("{ truncated nonsense")
        with pytest.warns(UserWarning, match="quarantined"):
            loaded = ck.load_latest()
        assert loaded["kernels_completed"] == 1
        assert ck.quarantined == 1
        quarantine = os.path.join(ck.directory, "quarantine")
        assert os.listdir(quarantine) == ["ckpt-2.json"]
        assert not os.path.exists(ck.path_for(2))

    def test_tampered_payload_quarantined(self, tmp_path):
        ck = self.make(tmp_path)
        ck.save(self.snapshot(1))
        with open(ck.path_for(1)) as fh:
            record = json.load(fh)
        record["payload"]["cycles"] = 999999.0  # digest now stale
        with open(ck.path_for(1), "w") as fh:
            json.dump(record, fh)
        with pytest.warns(UserWarning, match="digest mismatch"):
            assert ck.load_latest() is None
        assert ck.quarantined == 1

    def test_schema_drift_quarantined(self, tmp_path):
        ck = self.make(tmp_path)
        ck.save(self.snapshot(1))
        with open(ck.path_for(1)) as fh:
            record = json.load(fh)
        record["schema"] = SCHEMA_VERSION + 99
        with open(ck.path_for(1), "w") as fh:
            json.dump(record, fh)
        with pytest.warns(UserWarning, match="schema version"):
            assert ck.load_latest() is None
        assert ck.quarantined == 1

    def test_foreign_run_key_quarantined(self, tmp_path):
        ck = self.make(tmp_path)
        ck.save(self.snapshot(1))
        foreign = Checkpointer(ck.directory, run_key="mcm|other-run")
        with pytest.warns(UserWarning, match="belongs to run"):
            assert foreign.load_latest() is None
        assert foreign.quarantined == 1

    def test_resume_false_reads_nothing(self, tmp_path):
        ck = self.make(tmp_path)
        ck.save(self.snapshot(1))
        cold = self.make(tmp_path, resume=False)
        assert cold.load_latest() is None
        assert cold.quarantined == 0
        assert os.path.exists(ck.path_for(1))  # still there for post-mortems

    def test_save_failure_degrades_to_warning(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        ck = Checkpointer(str(blocker / "run"), run_key=self.RUN_KEY)
        with pytest.warns(UserWarning, match="cannot write"):
            assert not ck.save(self.snapshot(1))
        assert ck.saves == 0

    def test_cleanup_removes_run_directory(self, tmp_path):
        ck = self.make(tmp_path)
        ck.save(self.snapshot(1))
        ck.save(self.snapshot(2))
        ck.cleanup()
        assert not os.path.exists(ck.directory)

    def test_cleanup_preserves_quarantined_evidence(self, tmp_path):
        ck = self.make(tmp_path)
        ck.save(self.snapshot(1))
        with open(ck.path_for(1), "w") as fh:
            fh.write("garbage")
        with pytest.warns(UserWarning):
            ck.load_latest()
        ck.cleanup()
        quarantine = os.path.join(ck.directory, "quarantine")
        assert os.listdir(quarantine) == ["ckpt-1.json"]


class TestCheckpointPolicy:
    def test_disabled_states(self):
        assert not CheckpointPolicy(root=None).enabled
        assert not CheckpointPolicy(root="x", interval=0).enabled
        assert CheckpointPolicy(root="x", interval=1).enabled
        assert CheckpointPolicy(root=None).checkpointer_for("key") is None
        assert (
            CheckpointPolicy(root="x", interval=0).checkpointer_for("key")
            is None
        )

    def test_checkpointer_for_builds_run_directory(self, tmp_path):
        policy = CheckpointPolicy(
            root=str(tmp_path), interval=2, resume=False
        )
        ck = policy.checkpointer_for("sim|abc")
        assert ck.directory == os.path.join(str(tmp_path), run_digest("sim|abc"))
        assert ck.interval == 2
        assert not ck.resume
        assert ck.run_key == "sim|abc"


class TestSimulatorResume:
    def kill_run(self, tmp_path, workload, boundary=1):
        """Run until the injected post-checkpoint death; leaves snapshots."""
        ck = Checkpointer(
            str(tmp_path / "run"),
            run_key="test-run",
            on_checkpoint=killer(boundary),
        )
        with pytest.raises(KilledAfterCheckpoint):
            GPUSimulator(tiny_config()).run(workload, checkpointer=ck)
        return ck

    def test_resume_is_bit_identical(self, tmp_path):
        workload = multi_kernel_workload()
        baseline = result_payload(simulate(tiny_config(), workload))
        self.kill_run(tmp_path, workload, boundary=1)
        ck = Checkpointer(str(tmp_path / "run"), run_key="test-run")
        result = GPUSimulator(tiny_config()).run(workload, checkpointer=ck)
        assert ck.resumed_from == 1
        assert ck.cycles_saved > 0
        assert result_payload(result) == baseline
        # A finished run has nothing left to protect.
        assert not os.path.exists(ck.directory)

    def test_resume_from_latest_of_several(self, tmp_path):
        workload = multi_kernel_workload(num_kernels=4)
        baseline = result_payload(simulate(tiny_config(), workload))
        self.kill_run(tmp_path, workload, boundary=2)  # saved ckpt-1, ckpt-2
        ck = Checkpointer(str(tmp_path / "run"), run_key="test-run")
        result = GPUSimulator(tiny_config()).run(workload, checkpointer=ck)
        assert ck.resumed_from == 2
        assert result_payload(result) == baseline

    def test_corrupt_checkpoint_degrades_to_cold_start(self, tmp_path):
        workload = multi_kernel_workload()
        baseline = result_payload(simulate(tiny_config(), workload))
        killed = self.kill_run(tmp_path, workload, boundary=1)
        with open(killed.path_for(1), "w") as fh:
            fh.write("not json at all")
        ck = Checkpointer(str(tmp_path / "run"), run_key="test-run")
        with pytest.warns(UserWarning, match="quarantined"):
            result = GPUSimulator(tiny_config()).run(
                workload, checkpointer=ck
            )
        assert ck.resumed_from is None
        assert ck.quarantined == 1
        assert result_payload(result) == baseline

    def test_no_resume_starts_cold(self, tmp_path):
        workload = multi_kernel_workload()
        baseline = result_payload(simulate(tiny_config(), workload))
        self.kill_run(tmp_path, workload, boundary=1)
        ck = Checkpointer(
            str(tmp_path / "run"), run_key="test-run", resume=False
        )
        result = GPUSimulator(tiny_config()).run(workload, checkpointer=ck)
        assert ck.resumed_from is None
        assert result_payload(result) == baseline

    def test_snapshot_for_different_workload_is_ignored(self, tmp_path):
        self.kill_run(tmp_path, multi_kernel_workload(name="wl-a"))
        other = multi_kernel_workload(name="wl-b")
        baseline = result_payload(simulate(tiny_config(), other))
        ck = Checkpointer(str(tmp_path / "run"), run_key="test-run")
        with pytest.warns(UserWarning, match="different run"):
            result = GPUSimulator(tiny_config()).run(other, checkpointer=ck)
        assert ck.resumed_from is None
        assert result_payload(result) == baseline

    def test_single_kernel_workload_never_checkpoints(self, tmp_path):
        workload = multi_kernel_workload(num_kernels=1)
        ck = Checkpointer(str(tmp_path / "run"), run_key="test-run")
        simulate(tiny_config(), workload, checkpointer=ck)
        assert ck.saves == 0
        assert not os.path.exists(ck.directory)

    def test_interval_gates_snapshots(self, tmp_path):
        workload = multi_kernel_workload(num_kernels=4)  # boundaries 1..3
        ck = Checkpointer(
            str(tmp_path / "run"), run_key="test-run", interval=2
        )
        simulate(tiny_config(), workload, checkpointer=ck)
        assert ck.saves == 1  # boundary 2 only

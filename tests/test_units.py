"""Unit-helper tests."""

import pytest

from repro.units import (
    GB,
    GBPS,
    GHZ,
    KB,
    MB,
    TBPS,
    bytes_per_cycle,
    cycles_for_bytes,
    format_bandwidth,
    format_bytes,
)


class TestConstants:
    def test_capacity_ladder(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB

    def test_bandwidth_constants_decimal(self):
        assert GBPS == 1e9
        assert TBPS == 1e12


class TestBytesPerCycle:
    def test_paper_noc(self):
        # 2606 GB/s at 1 GHz is 2606 bytes per cycle.
        assert bytes_per_cycle(2606 * GBPS, 1 * GHZ) == pytest.approx(2606.0)

    def test_higher_clock_fewer_bytes(self):
        assert bytes_per_cycle(1700 * GBPS, 1.7 * GHZ) == pytest.approx(1000.0)

    def test_zero_clock_rejected(self):
        with pytest.raises(ValueError):
            bytes_per_cycle(1.0, 0.0)


class TestCyclesForBytes:
    def test_one_line(self):
        # A 128-byte line over a 128 B/cycle link takes one cycle.
        assert cycles_for_bytes(128, 128 * GHZ / 1e9 * 1e9, 1 * GHZ) == pytest.approx(1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            cycles_for_bytes(128, 0.0, 1 * GHZ)


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (34 * MB, "34 MB"),
            (512 * KB, "512 KB"),
            (2 * GB, "2 GB"),
            (100, "100 B"),
            (int(2.125 * MB), "2.125 MB"),
        ],
    )
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (2.7 * TBPS, "2.7 TB/s"),
            (145 * GBPS, "145 GB/s"),
            (168.5 * GBPS, "168.5 GB/s"),
        ],
    )
    def test_format_bandwidth(self, value, expected):
        assert format_bandwidth(value) == expected

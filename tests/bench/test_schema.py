"""Artifact schema validation and JSON round-trip tests."""

import json

import pytest

from repro.bench import ARTIFACT_KIND, SCHEMA_VERSION, validate_artifact


def make_artifact(**overrides):
    """A minimal schema-valid quick-tier artifact."""
    document = {
        "schema_version": SCHEMA_VERSION,
        "kind": ARTIFACT_KIND,
        "tier": "quick",
        "created_unix": 1700000000.0,
        "host": {"python": "3.12.0", "platform": "linux", "cpu_count": 4,
                 "jobs": 1},
        "matrix": {
            "seed": 0,
            "cases": [{"abbr": "va", "scales": [8, 16], "targets": [32]}],
        },
        "workload_classes": {
            "super-linear": {
                "benchmarks": ["va"],
                "sim_cycles_per_sec": 250000.0,
                "warp_instructions_per_sec": 1.5e6,
                "events_per_sec": 120000.0,
                "simulated_cycles": 1.2e6,
                "warp_instructions": 7.2e6,
                "wall_time_s": 4.8,
            },
        },
        "campaign": {
            "cold_wall_s": 20.0,
            "warm_wall_s": 0.5,
            "runs": 4,
            "warm_hits": 4,
            "warm_misses": 0,
        },
        "accuracy": {
            "super-linear": {"mape_pct": 3.5, "max_ape_pct": 6.0, "count": 1},
        },
        "memory": {"peak_rss_bytes": 180 * 2**20},
        "cross_check": {"engine_loop_s": 4.5, "harness_sim_wall_s": 4.8},
    }
    document.update(overrides)
    return document


class TestValidArtifacts:
    def test_minimal_artifact_is_valid(self):
        assert validate_artifact(make_artifact()) == []

    def test_survives_json_round_trip(self):
        document = make_artifact()
        restored = json.loads(json.dumps(document))
        assert validate_artifact(restored) == []
        assert restored == document

    def test_cross_check_is_optional(self):
        document = make_artifact()
        del document["cross_check"]
        assert validate_artifact(document) == []

    def test_full_tier_accepted(self):
        assert validate_artifact(make_artifact(tier="full")) == []


def make_service_block(**overrides):
    block = {
        "p50_ms": 800.0,
        "p95_ms": 2500.0,
        "p99_ms": 4000.0,
        "throughput_rps": 2.5,
        "shed_rate": 0.05,
        "requests": 48,
    }
    block.update(overrides)
    return block


class TestServiceBlock:
    def test_service_block_is_optional(self):
        assert validate_artifact(make_artifact()) == []

    def test_valid_service_block_accepted(self):
        document = make_artifact(service=make_service_block())
        assert validate_artifact(document) == []

    def test_missing_service_metric_rejected(self):
        block = make_service_block()
        del block["p99_ms"]
        problems = validate_artifact(make_artifact(service=block))
        assert any("service" in p and "p99_ms" in p for p in problems)

    def test_shed_rate_must_be_a_fraction(self):
        document = make_artifact(
            service=make_service_block(shed_rate=12.0)
        )
        problems = validate_artifact(document)
        assert any("shed_rate" in p and "fraction" in p for p in problems)

    def test_negative_latency_rejected(self):
        document = make_artifact(service=make_service_block(p50_ms=-1.0))
        problems = validate_artifact(document)
        assert any("service.p50_ms" in p for p in problems)


def make_zoo_block(**overrides):
    block = {
        "workloads": 6,
        "runs": 24,
        "campaign_wall_s": 19.0,
        "workloads_per_sec": 0.32,
        "regime_match_rate": 0.83,
        "mape_pct": 41.0,
        "per_regime": {
            "linear": {"mape_pct": 7.6, "count": 2},
            "sub-linear": {"mape_pct": 17.1, "count": 2},
            "super-linear": {"mape_pct": 171.6, "count": 2},
        },
    }
    block.update(overrides)
    return block


class TestZooBlock:
    def test_zoo_block_is_optional(self):
        assert validate_artifact(make_artifact()) == []

    def test_valid_zoo_block_accepted(self):
        document = make_artifact(zoo=make_zoo_block())
        assert validate_artifact(document) == []

    def test_missing_zoo_metric_rejected(self):
        block = make_zoo_block()
        del block["mape_pct"]
        problems = validate_artifact(make_artifact(zoo=block))
        assert any("zoo" in p and "mape_pct" in p for p in problems)

    def test_match_rate_must_be_a_fraction(self):
        document = make_artifact(zoo=make_zoo_block(regime_match_rate=6.0))
        problems = validate_artifact(document)
        assert any("regime_match_rate" in p and "fraction" in p
                   for p in problems)

    def test_empty_per_regime_rejected(self):
        document = make_artifact(zoo=make_zoo_block(per_regime={}))
        problems = validate_artifact(document)
        assert any("per_regime" in p for p in problems)

    def test_per_regime_missing_count_rejected(self):
        block = make_zoo_block()
        del block["per_regime"]["linear"]["count"]
        problems = validate_artifact(make_artifact(zoo=block))
        assert any("per_regime.linear" in p and "count" in p
                   for p in problems)


class TestInvalidArtifacts:
    def test_non_object_rejected(self):
        assert validate_artifact([1, 2]) != []
        assert validate_artifact(None) != []

    def test_wrong_kind(self):
        problems = validate_artifact(make_artifact(kind="not-a-bench"))
        assert any("kind" in p for p in problems)

    def test_wrong_schema_version(self):
        problems = validate_artifact(
            make_artifact(schema_version=SCHEMA_VERSION + 1)
        )
        assert any("schema_version" in p for p in problems)

    def test_unknown_tier(self):
        problems = validate_artifact(make_artifact(tier="nightly"))
        assert any("tier" in p for p in problems)

    def test_missing_class_metric(self):
        document = make_artifact()
        del document["workload_classes"]["super-linear"]["sim_cycles_per_sec"]
        problems = validate_artifact(document)
        assert any("sim_cycles_per_sec" in p for p in problems)

    def test_non_numeric_metric(self):
        document = make_artifact()
        document["campaign"]["cold_wall_s"] = "fast"
        problems = validate_artifact(document)
        assert any("cold_wall_s" in p for p in problems)

    def test_boolean_is_not_a_number(self):
        document = make_artifact()
        document["memory"]["peak_rss_bytes"] = True
        problems = validate_artifact(document)
        assert any("peak_rss_bytes" in p for p in problems)

    def test_negative_metric(self):
        document = make_artifact()
        document["campaign"]["warm_wall_s"] = -1.0
        problems = validate_artifact(document)
        assert any("warm_wall_s" in p for p in problems)

    def test_empty_workload_classes(self):
        problems = validate_artifact(make_artifact(workload_classes={}))
        assert any("workload_classes" in p for p in problems)

    def test_empty_benchmark_list(self):
        document = make_artifact()
        document["workload_classes"]["super-linear"]["benchmarks"] = []
        problems = validate_artifact(document)
        assert any("benchmarks" in p for p in problems)

    def test_missing_accuracy(self):
        problems = validate_artifact(make_artifact(accuracy={}))
        assert any("accuracy" in p for p in problems)

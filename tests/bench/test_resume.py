"""Bench campaign resume: journaled run_bench over a persistent cache —
budget stop, resume without re-simulation, and the stale-cache guard
accepting journal-reused runs (the satellite regression)."""

import pytest

from repro.bench import (
    ARTIFACT_KIND,
    compare_artifacts,
    matrix_plan_payload,
    validate_artifact,
)
from repro.bench import harness
from repro.bench.harness import run_bench
from repro.bench.matrix import BenchCase, BenchMatrix
from repro.campaign import CampaignBudget, CampaignJournal

from tests.bench.test_schema import make_artifact

PARTIAL_BLOCK = {
    "reason": "drain", "signum": 15,
    "completed": 1, "planned": 3, "remaining": 2,
}


class TestPartialArtifactPlumbing:
    def test_schema_accepts_a_well_formed_partial_block(self):
        document = make_artifact()
        document["partial"] = dict(PARTIAL_BLOCK)
        assert validate_artifact(document) == []

    def test_schema_rejects_malformed_partial_blocks(self):
        for bad in (
            "drained",
            {"reason": ""},
            {"reason": "drain", "completed": "one"},
        ):
            document = make_artifact()
            document["partial"] = bad
            assert validate_artifact(document) != []

    def test_compare_refuses_partial_artifacts(self):
        good = make_artifact()
        partial = make_artifact()
        partial["partial"] = dict(PARTIAL_BLOCK)
        with pytest.raises(ValueError, match="partial"):
            compare_artifacts(partial, good)
        with pytest.raises(ValueError, match="partial"):
            compare_artifacts(good, partial)


def test_budget_stop_then_resume_without_resimulation(tmp_path, monkeypatch):
    # One generated workload in the zoo phase keeps the completed-run
    # cost test-sized without touching the resume logic under test.
    monkeypatch.setitem(harness._ZOO_N, "quick", 1)
    matrix = BenchMatrix(
        tier="quick", cases=(BenchCase("va"), BenchCase("bs")), seed=0
    )
    plan = matrix_plan_payload(matrix)
    cache = str(tmp_path / "simcache")

    def open_journal():
        return CampaignJournal.open(
            str(tmp_path / "journal"), ARTIFACT_KIND, plan, created_unix=0.0
        )

    partial = run_bench(
        matrix, cache, journal=open_journal(),
        budget=CampaignBudget(max_workloads=1),
    )
    assert validate_artifact(partial) == []
    assert partial["partial"]["reason"] == "workload-budget"
    assert partial["partial"]["completed"] == 1
    assert partial["partial"]["remaining"] == 1
    # Partial artifacts measure the completed prefix and skip the zoo.
    assert partial["campaign"]["runs"] == 4
    assert "zoo" not in partial

    journal = open_journal()
    assert journal.units() == ["va"]
    # The resume serves the sealed case from the persistent store.  The
    # stale-cache guard must accept those journal-reused runs instead of
    # demanding them as cold misses (the regression this test pins).
    full = run_bench(matrix, cache, journal=journal)
    assert validate_artifact(full) == []
    assert "partial" not in full
    assert full["campaign"]["runs"] == matrix.run_count == 8
    assert "zoo" in full
    assert journal.complete

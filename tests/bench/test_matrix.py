"""Bench matrix determinism and shape tests."""

import pytest

from repro.bench import BenchCase, BenchMatrix, full_matrix, matrix_for_tier, quick_matrix
from repro.exceptions import ReproError
from repro.workloads import STRONG_SCALING


class TestQuickMatrix:
    def test_deterministic(self):
        # The quick tier is the CI gate: two constructions must agree on
        # every case, scale, target and the seed.
        assert quick_matrix() == quick_matrix()

    def test_one_case_per_scaling_class(self):
        groups = quick_matrix().by_class()
        assert sorted(groups) == ["linear", "sub-linear", "super-linear"]
        assert all(len(cases) == 1 for cases in groups.values())

    def test_fixed_seed(self):
        assert quick_matrix().seed == 0

    def test_run_count_counts_sims_and_mrcs(self):
        matrix = quick_matrix()
        # 3 cases x (2 scales + 1 target) sims + 3 MRC collections.
        assert matrix.run_count == 12


class TestFullMatrix:
    def test_covers_every_strong_scaling_benchmark(self):
        abbrs = {case.abbr for case in full_matrix().cases}
        assert abbrs == set(STRONG_SCALING)

    def test_two_targets(self):
        assert all(case.targets == (32, 64) for case in full_matrix().cases)


class TestMatrixValidation:
    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ReproError):
            BenchCase("definitely-not-a-benchmark")

    def test_single_scale_rejected(self):
        with pytest.raises(ReproError):
            BenchCase("va", scales=(8,))

    def test_target_below_largest_scale_rejected(self):
        with pytest.raises(ReproError):
            BenchCase("va", scales=(8, 16), targets=(12,))

    def test_empty_matrix_rejected(self):
        with pytest.raises(ReproError):
            BenchMatrix(tier="quick", cases=())

    def test_duplicate_benchmarks_rejected(self):
        with pytest.raises(ReproError):
            BenchMatrix(tier="quick", cases=(BenchCase("va"), BenchCase("va")))

    def test_unknown_tier_rejected(self):
        with pytest.raises(ReproError):
            matrix_for_tier("nightly")

    def test_sizes_order_scales_then_targets(self):
        case = BenchCase("va", scales=(8, 16), targets=(32,))
        assert case.sizes == (8, 16, 32)

"""Baseline comparator: per-family thresholds, direction, failure modes."""

import copy

import pytest

from repro.bench import Thresholds, compare_artifacts

from tests.bench.test_schema import make_artifact


def modified(path, value):
    """A copy of the canonical artifact with one leaf replaced."""
    document = copy.deepcopy(make_artifact())
    node = document
    for key in path[:-1]:
        node = node[key]
    node[path[-1]] = value
    return document


class TestNoRegression:
    def test_identical_artifacts_pass(self):
        assert compare_artifacts(make_artifact(), make_artifact()) == []

    def test_improvement_passes(self):
        faster = modified(
            ("workload_classes", "super-linear", "sim_cycles_per_sec"), 5e6
        )
        assert compare_artifacts(make_artifact(), faster) == []

    def test_small_slowdown_within_tolerance_passes(self):
        # Default walltime tolerance is +150%; a 2x slowdown passes.
        slower = modified(("campaign", "cold_wall_s"), 40.0)
        assert compare_artifacts(make_artifact(), slower) == []

    def test_extra_class_in_current_is_not_a_regression(self):
        current = copy.deepcopy(make_artifact())
        current["workload_classes"]["linear"] = copy.deepcopy(
            current["workload_classes"]["super-linear"]
        )
        current["workload_classes"]["linear"]["benchmarks"] = ["bs"]
        assert compare_artifacts(make_artifact(), current) == []


class TestRegressions:
    def test_throughput_collapse_fails(self):
        # Baseline 250k cycles/s; default tolerance allows down to 125k.
        slow = modified(
            ("workload_classes", "super-linear", "sim_cycles_per_sec"), 100000.0
        )
        regressions = compare_artifacts(make_artifact(), slow)
        assert len(regressions) == 1
        assert regressions[0].family == "throughput"
        assert "sim_cycles_per_sec" in regressions[0].metric

    def test_warp_throughput_gated_separately(self):
        slow = modified(
            ("workload_classes", "super-linear", "warp_instructions_per_sec"),
            1000.0,
        )
        regressions = compare_artifacts(make_artifact(), slow)
        assert [r.metric for r in regressions] == [
            "super-linear.warp_instructions_per_sec"
        ]

    def test_walltime_blowup_fails(self):
        slower = modified(("campaign", "cold_wall_s"), 200.0)
        regressions = compare_artifacts(make_artifact(), slower)
        assert [r.family for r in regressions] == ["walltime"]

    def test_mape_growth_beyond_pp_tolerance_fails(self):
        # Baseline MAPE 3.5%; default tolerance is +1.0pp.
        worse = modified(("accuracy", "super-linear", "mape_pct"), 5.1)
        regressions = compare_artifacts(make_artifact(), worse)
        assert [r.family for r in regressions] == ["accuracy"]

    def test_mape_within_pp_tolerance_passes(self):
        worse = modified(("accuracy", "super-linear", "mape_pct"), 4.4)
        assert compare_artifacts(make_artifact(), worse) == []

    def test_rss_doubling_plus_fails(self):
        bigger = modified(("memory", "peak_rss_bytes"), 800 * 2**20)
        regressions = compare_artifacts(make_artifact(), bigger)
        assert [r.family for r in regressions] == ["memory"]

    def test_lost_workload_class_fails(self):
        current = copy.deepcopy(make_artifact())
        baseline = copy.deepcopy(make_artifact())
        baseline["workload_classes"]["linear"] = copy.deepcopy(
            baseline["workload_classes"]["super-linear"]
        )
        regressions = compare_artifacts(baseline, current)
        assert any("missing" in r.metric for r in regressions)

    def test_lost_regime_fails(self):
        baseline = copy.deepcopy(make_artifact())
        baseline["accuracy"]["linear"] = {
            "mape_pct": 1.0, "max_ape_pct": 2.0, "count": 1
        }
        regressions = compare_artifacts(baseline, make_artifact())
        assert any(r.family == "accuracy" for r in regressions)


class TestThresholdKnobs:
    def test_tight_throughput_threshold(self):
        slow = modified(
            ("workload_classes", "super-linear", "sim_cycles_per_sec"), 240000.0
        )
        tight = Thresholds(throughput_frac=0.01)
        assert compare_artifacts(make_artifact(), slow, tight) != []
        assert compare_artifacts(make_artifact(), slow) == []

    def test_loose_walltime_threshold(self):
        slower = modified(("campaign", "cold_wall_s"), 200.0)
        loose = Thresholds(walltime_frac=10.0)
        assert compare_artifacts(make_artifact(), slower, loose) == []

    def test_zero_mape_tolerance(self):
        worse = modified(("accuracy", "super-linear", "mape_pct"), 3.6)
        strict = Thresholds(mape_pp=0.0)
        assert compare_artifacts(make_artifact(), worse, strict) != []


class TestServiceFamily:
    """The service block gates only when the baseline carries it."""

    @staticmethod
    def with_service(**overrides):
        from tests.bench.test_schema import make_service_block

        return make_artifact(service=make_service_block(**overrides))

    def test_absent_in_baseline_never_gates(self):
        # An old baseline without the block compares clean against a
        # current that has one (and vice versa is covered below).
        assert compare_artifacts(make_artifact(), self.with_service()) == []

    def test_identical_service_blocks_pass(self):
        assert compare_artifacts(self.with_service(), self.with_service()) == []

    def test_lost_service_block_is_a_regression(self):
        regressions = compare_artifacts(self.with_service(), make_artifact())
        assert [r.family for r in regressions] == ["service"]
        assert "missing" in regressions[0].metric

    def test_latency_blowup_fails(self):
        regressions = compare_artifacts(
            self.with_service(), self.with_service(p95_ms=2500.0 * 2.6)
        )
        assert [r.metric for r in regressions] == ["p95_ms"]

    def test_latency_within_tolerance_passes(self):
        current = self.with_service(p95_ms=2500.0 * 2.4)
        assert compare_artifacts(self.with_service(), current) == []

    def test_throughput_collapse_fails(self):
        regressions = compare_artifacts(
            self.with_service(), self.with_service(throughput_rps=1.0)
        )
        assert [r.metric for r in regressions] == ["throughput_rps"]

    def test_shed_rate_spike_fails_but_small_rise_passes(self):
        assert (
            compare_artifacts(
                self.with_service(), self.with_service(shed_rate=0.15)
            )
            == []
        )
        regressions = compare_artifacts(
            self.with_service(), self.with_service(shed_rate=0.5)
        )
        assert [r.metric for r in regressions] == ["shed_rate"]

    def test_thresholds_are_knobs(self):
        tight = Thresholds(service_latency_frac=0.1)
        regressions = compare_artifacts(
            self.with_service(),
            self.with_service(p50_ms=800.0 * 1.2),
            tight,
        )
        assert [r.metric for r in regressions] == ["p50_ms"]


class TestZooFamily:
    """The zoo block gates only when the baseline carries it."""

    @staticmethod
    def with_zoo(**overrides):
        from tests.bench.test_schema import make_zoo_block

        return make_artifact(zoo=make_zoo_block(**overrides))

    def test_absent_in_baseline_never_gates(self):
        assert compare_artifacts(make_artifact(), self.with_zoo()) == []

    def test_identical_zoo_blocks_pass(self):
        assert compare_artifacts(self.with_zoo(), self.with_zoo()) == []

    def test_lost_zoo_block_is_a_regression(self):
        regressions = compare_artifacts(self.with_zoo(), make_artifact())
        assert [r.family for r in regressions] == ["zoo"]
        assert "missing" in regressions[0].metric

    def test_mape_growth_beyond_tolerance_fails(self):
        # Default zoo tolerance is +5pp.
        regressions = compare_artifacts(
            self.with_zoo(), self.with_zoo(mape_pct=41.0 + 6.0)
        )
        assert [r.metric for r in regressions] == ["mape_pct"]
        assert compare_artifacts(
            self.with_zoo(), self.with_zoo(mape_pct=41.0 + 4.0)
        ) == []

    def test_match_rate_collapse_fails_but_small_dip_passes(self):
        assert compare_artifacts(
            self.with_zoo(), self.with_zoo(regime_match_rate=0.75)
        ) == []
        regressions = compare_artifacts(
            self.with_zoo(), self.with_zoo(regime_match_rate=0.5)
        )
        assert [r.metric for r in regressions] == ["regime_match_rate"]

    def test_campaign_walltime_blowup_fails(self):
        regressions = compare_artifacts(
            self.with_zoo(), self.with_zoo(campaign_wall_s=19.0 * 3.0)
        )
        assert [r.metric for r in regressions] == ["campaign_wall_s"]

    def test_workload_throughput_collapse_fails(self):
        regressions = compare_artifacts(
            self.with_zoo(), self.with_zoo(workloads_per_sec=0.32 * 0.25)
        )
        assert [r.metric for r in regressions] == ["workloads_per_sec"]

    def test_thresholds_are_knobs(self):
        tight = Thresholds(zoo_match_pts=0.01)
        regressions = compare_artifacts(
            self.with_zoo(), self.with_zoo(regime_match_rate=0.78), tight
        )
        assert [r.metric for r in regressions] == ["regime_match_rate"]


class TestCompareErrors:
    def test_rejects_invalid_baseline(self):
        with pytest.raises(ValueError):
            compare_artifacts({"kind": "junk"}, make_artifact())

    def test_rejects_invalid_current(self):
        with pytest.raises(ValueError):
            compare_artifacts(make_artifact(), {"kind": "junk"})

    def test_rejects_tier_mismatch(self):
        with pytest.raises(ValueError):
            compare_artifacts(make_artifact(), make_artifact(tier="full"))

    def test_regression_renders_readably(self):
        slow = modified(
            ("workload_classes", "super-linear", "sim_cycles_per_sec"), 1.0
        )
        (regression,) = compare_artifacts(make_artifact(), slow)
        text = str(regression)
        assert "throughput" in text
        assert "baseline" in text

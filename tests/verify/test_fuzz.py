"""Seeded fuzzer: determinism, clean fixed seeds, shrinking on a real fault."""

import pytest

from repro.analysis.faults import FAULT_INJECT_ENV
from repro.verify.fuzz import check_case, random_case, run_fuzz, shrink


class TestGeneration:
    def test_same_seed_same_case(self):
        assert random_case(5).describe() == random_case(5).describe()

    def test_different_seeds_differ(self):
        descriptions = {random_case(seed).describe() for seed in range(8)}
        assert len(descriptions) > 1

    def test_cases_are_buildable(self):
        case = random_case(3)
        assert case.spec.kernels
        assert all(k.threads_per_cta >= 32 for k in case.spec.kernels)
        assert case.size in (2, 4)


class TestCleanSeeds:
    def test_ci_seed_prefix_is_green(self):
        report = run_fuzz(range(4))
        assert report.ok
        assert report.cases_run == 4

    def test_time_budget_stops_early(self):
        report = run_fuzz(range(1000), time_budget_s=0.0)
        assert report.cases_run <= 1


class TestInjectedFault:
    @pytest.fixture
    def drop_miss(self, monkeypatch):
        # Every fuzz spec is named fuzz<seed>, so this prefix hits all.
        monkeypatch.setenv(FAULT_INJECT_ENV, "drop-miss:fuzz")

    def test_fuzzer_catches_the_mutation(self, drop_miss):
        report = run_fuzz(range(2), shrink_failures=False)
        assert not report.ok
        assert len(report.failures) == 2
        for failure in report.failures:
            assert "miss conservation" in failure.error

    def test_shrink_minimizes_while_still_failing(self, drop_miss):
        case = random_case(0)
        assert check_case(case) is not None
        shrunk = shrink(case)
        assert check_case(shrunk) is not None
        assert len(shrunk.spec.kernels) == 1
        assert shrunk.spec.kernels[0].num_ctas == 1
        assert shrunk.spec.kernels[0].threads_per_cta == 32
        assert not shrunk.spec.params
        assert shrunk.size == 2

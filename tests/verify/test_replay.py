"""Differential replay: cold vs. resume, checked vs. plain, and the
first-divergence localizer on a genuinely mutated leg."""

import pytest

from repro.analysis.faults import FAULT_INJECT_ENV
from repro.gpu import GPUSimulator
from repro.verify.replay import (
    digest_run,
    first_divergence,
    replay_checked_vs_plain,
    replay_cold_vs_resume,
)

from tests.verify.conftest import small_setup


def _factory(config):
    return lambda: GPUSimulator(config)


class TestColdVsResume:
    def test_resume_digests_match_every_boundary(self):
        config, trace = small_setup()  # btree: 2 kernels, 1 boundary
        cold, resumed, divergence = replay_cold_vs_resume(
            _factory(config), trace
        )
        assert divergence is None
        assert resumed.resumed_from is not None
        assert len(cold.boundaries) == len(trace.kernels) - 1
        assert cold.result_digest == resumed.result_digest

    def test_three_kernel_resume(self):
        config, trace = small_setup(abbr="dct", work_scale=0.05)
        for resume_at in (1, 2):
            _, resumed, divergence = replay_cold_vs_resume(
                _factory(config), trace, resume_at=resume_at
            )
            assert divergence is None
            assert resumed.resumed_from == resume_at

    def test_single_kernel_has_no_boundary(self):
        config, trace = small_setup(abbr="va", size=2, work_scale=0.05)
        with pytest.raises(ValueError, match="no internal kernel"):
            replay_cold_vs_resume(_factory(config), trace)


class TestCheckedVsPlain:
    def test_checked_loop_is_semantically_identical(self):
        config, trace = small_setup()
        plain, checked, divergence = replay_checked_vs_plain(
            _factory(config), trace
        )
        assert divergence is None
        assert plain.result_digest == checked.result_digest


class TestFirstDivergence:
    def test_determinism_differential_is_clean(self):
        config, trace = small_setup()
        a = digest_run(_factory(config), trace)
        b = digest_run(_factory(config), trace)
        assert first_divergence(a, b) is None

    def test_mutated_leg_names_first_kernel_and_field(self, monkeypatch):
        config, trace = small_setup()
        clean = digest_run(_factory(config), trace)
        monkeypatch.setenv(FAULT_INJECT_ENV, f"drop-miss:{trace.name}")
        mutated = digest_run(_factory(config), trace)
        divergence = first_divergence(clean, mutated)
        assert divergence is not None
        # The single dropped increment lands in kernel 0, so the first
        # boundary's memory digest is where the paths split.
        assert divergence.kernel == 1
        assert divergence.field == "memory"
        text = str(divergence)
        assert "first divergence at kernel boundary 1" in text
        assert "memory" in text

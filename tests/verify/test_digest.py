"""Canonical digests: stability, volatility exclusion, field sensitivity."""

import pytest

from repro.verify.digest import (
    VOLATILE_RESULT_FIELDS,
    canonical_json,
    content_digest,
    payload_digest,
    state_digest,
    state_field_digests,
)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json(
            {"a": 2, "b": 1}
        )

    def test_compact_sorted_encoding(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_non_serializable_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"a": {1, 2}})


class TestContentDigest:
    def test_prefix_and_determinism(self):
        digest = content_digest({"x": 1})
        assert digest.startswith("sha256:")
        assert digest == content_digest({"x": 1})

    def test_sensitive_to_values(self):
        assert content_digest({"x": 1}) != content_digest({"x": 2})


class TestPayloadDigest:
    def test_wall_time_excluded(self):
        assert "wall_time_s" in VOLATILE_RESULT_FIELDS
        a = {"cycles": 100, "wall_time_s": 0.5}
        b = {"cycles": 100, "wall_time_s": 9.9}
        assert payload_digest(a) == payload_digest(b)

    def test_real_fields_still_matter(self):
        a = {"cycles": 100, "wall_time_s": 0.5}
        b = {"cycles": 101, "wall_time_s": 0.5}
        assert payload_digest(a) != payload_digest(b)

    def test_nested_volatile_fields_excluded(self):
        # MRC payloads carry their host-time measurement inside the
        # metadata block; volatility is a property of the field name at
        # any depth.
        a = {"mpki": [5.0], "metadata": {"collection_seconds": 1.9}}
        b = {"mpki": [5.0], "metadata": {"collection_seconds": 0.2}}
        c = {"mpki": [4.0], "metadata": {"collection_seconds": 1.9}}
        assert payload_digest(a) == payload_digest(b)
        assert payload_digest(a) != payload_digest(c)


class TestStateDigests:
    def test_per_field_localization(self):
        state = {"clock": {"now": 1.0}, "memory": {"l1_hits": 5}}
        tweaked = {"clock": {"now": 1.0}, "memory": {"l1_hits": 6}}
        before = state_field_digests(state)
        after = state_field_digests(tweaked)
        assert before["clock"] == after["clock"]
        assert before["memory"] != after["memory"]
        assert state_digest(state) != state_digest(tweaked)

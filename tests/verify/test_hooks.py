"""The zero-overhead-off contract: uninstall restores the pristine engine."""

import repro.analysis.runner as runner_mod
import repro.engine.event as event_mod
import repro.gpu.gpu as gpu_mod
from repro.core.model import ScaleModelPredictor
from repro.engine.kernel import SimulationKernel
from repro.gpu.gpu import GPUSimulator
from repro.verify import hooks


def _pristine_snapshot():
    return (
        SimulationKernel.run,
        GPUSimulator._build_result,
        ScaleModelPredictor.predict,
        runner_mod.compute_mrc,
        gpu_mod._boundary_observer,
        event_mod.PARANOIA,
    )


class TestInstallUninstall:
    def test_uninstall_restores_identity(self):
        before = _pristine_snapshot()
        hooks.install()
        assert SimulationKernel.run is not before[0]
        assert event_mod.PARANOIA is True
        assert gpu_mod._boundary_observer is not None
        hooks.uninstall()
        after = _pristine_snapshot()
        for original, restored in zip(before, after):
            assert restored is original

    def test_install_is_idempotent(self):
        before = _pristine_snapshot()
        hooks.install()
        patched = SimulationKernel.run
        hooks.install()
        assert SimulationKernel.run is patched
        hooks.uninstall()
        hooks.uninstall()
        assert SimulationKernel.run is before[0]

    def test_disabled_by_default(self):
        # The shipped engine carries no paranoia state: flag off, no
        # observer, and the hooks module reports not-installed.
        assert not hooks.installed()
        assert event_mod.PARANOIA is False
        assert gpu_mod._boundary_observer is None


class TestParanoiaContext:
    def test_restores_prior_off_state(self):
        with hooks.paranoia(True):
            assert hooks.installed()
        assert not hooks.installed()

    def test_restores_prior_on_state(self):
        hooks.install()
        with hooks.paranoia(False):
            assert not hooks.installed()
        assert hooks.installed()
        hooks.uninstall()

    def test_nested_scopes(self):
        with hooks.paranoia(True):
            with hooks.paranoia(False):
                assert not hooks.installed()
            assert hooks.installed()
        assert not hooks.installed()

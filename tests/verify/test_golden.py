"""Golden-ledger mechanics: pin, audit, drift/absence, save/load."""

import json
import os

import pytest

from repro.analysis.simcache import ResultStore
from repro.bench import matrix_for_tier
from repro.exceptions import ReproError
from repro.verify.golden import (
    LEDGER_VERSION,
    audit_store,
    ledger_requests,
    load_ledger,
    pin_store,
    save_ledger,
)


def _store_with(tmp_path, payloads):
    store = ResultStore(os.path.join(tmp_path, "simcache"))
    for key, payload in payloads.items():
        store.put(key, payload, shard="test")
    store.flush()
    return store


PAYLOADS = {
    "sim|a": {"cycles": 100.0, "l1_misses": 7, "wall_time_s": 0.1},
    "sim|b": {"cycles": 200.0, "l1_misses": 9, "wall_time_s": 0.2},
}


class TestPinAndAudit:
    def test_clean_roundtrip(self, tmp_path):
        store = _store_with(tmp_path, PAYLOADS)
        ledger = pin_store(store, sorted(PAYLOADS), reason="test pin")
        report = audit_store(ledger, store)
        assert report.ok
        assert set(report.matched) == set(PAYLOADS)

    def test_wall_time_never_drifts(self, tmp_path):
        ledger = pin_store(
            _store_with(tmp_path / "a", PAYLOADS), sorted(PAYLOADS),
            reason="test pin",
        )
        jittered = {
            key: dict(payload, wall_time_s=payload["wall_time_s"] * 10)
            for key, payload in PAYLOADS.items()
        }
        report = audit_store(ledger, _store_with(tmp_path / "b", jittered))
        assert report.ok

    def test_drift_detected_with_both_digests(self, tmp_path):
        ledger = pin_store(
            _store_with(tmp_path / "a", PAYLOADS), sorted(PAYLOADS),
            reason="test pin",
        )
        drifted = dict(PAYLOADS, **{
            "sim|b": {"cycles": 201.0, "l1_misses": 9, "wall_time_s": 0.2},
        })
        report = audit_store(ledger, _store_with(tmp_path / "b", drifted))
        assert not report.ok
        assert [key for key, _, _ in report.drifted] == ["sim|b"]
        key, expected, actual = report.drifted[0]
        assert expected != actual
        assert expected.startswith("sha256:")

    def test_absence_respects_require_all(self, tmp_path):
        ledger = pin_store(
            _store_with(tmp_path / "a", PAYLOADS), sorted(PAYLOADS),
            reason="test pin",
        )
        partial = {"sim|a": PAYLOADS["sim|a"]}
        partial_store = _store_with(tmp_path / "b", partial)
        strict = audit_store(ledger, partial_store)
        assert strict.absent == ("sim|b",)
        assert not strict.ok
        lenient = audit_store(ledger, partial_store, require_all=False)
        assert lenient.ok
        assert lenient.matched == ("sim|a",)

    def test_pin_refuses_missing_payload(self, tmp_path):
        store = _store_with(tmp_path, PAYLOADS)
        with pytest.raises(ReproError, match="no payload"):
            pin_store(store, ["sim|missing"], reason="test pin")


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        store = _store_with(tmp_path, PAYLOADS)
        ledger = pin_store(store, sorted(PAYLOADS), reason="test pin")
        path = os.path.join(tmp_path, "golden", "ledger.json")
        save_ledger(ledger, path)
        loaded = load_ledger(path)
        assert loaded == json.loads(json.dumps(ledger))
        assert loaded["version"] == LEDGER_VERSION
        assert loaded["reason"] == "test pin"

    def test_missing_file_names_the_bless_command(self, tmp_path):
        with pytest.raises(ReproError, match="--bless --reason"):
            load_ledger(os.path.join(tmp_path, "nope.json"))

    def test_version_mismatch_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "ledger.json")
        with open(path, "w") as handle:
            json.dump({"version": 99, "entries": {}}, handle)
        with pytest.raises(ReproError, match="version"):
            load_ledger(path)

    def test_garbage_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "ledger.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(ReproError, match="unreadable"):
            load_ledger(path)


class TestLedgerRequests:
    def test_mirrors_quick_tier_exactly(self):
        matrix = matrix_for_tier("quick")
        requests = ledger_requests(matrix)
        sims = [r for r in requests if r.kind == "sim"]
        mrcs = [r for r in requests if r.kind == "mrc"]
        assert len(sims) == sum(len(case.sizes) for case in matrix.cases)
        assert len(mrcs) == len(matrix.cases)
        assert len({r.key for r in requests}) == len(requests)
        assert all(r.seed == matrix.seed for r in requests)

    def test_shipped_ledger_matches_tier_definition(self):
        # results/golden/ledger.json must cover exactly the quick tier;
        # a matrix change without a re-bless is a CI-visible drift.
        ledger = load_ledger()  # repo-root default path (pytest cwd)
        requests = ledger_requests(matrix_for_tier("quick"))
        assert set(ledger["entries"]) == {r.key for r in requests}
        assert ledger["tier"] == "quick"

"""Paranoia mode against the real engine: clean runs pass, seeded
engine mutations (``REPRO_FAULT_INJECT=drop-miss:...``) are caught."""

import pytest

from repro.analysis.faults import FAULT_INJECT_ENV
from repro.exceptions import InvariantError
from repro.gpu import GPUSimulator
from repro.verify import hooks
from repro.verify.runtime import VERIFY_ENV

from tests.verify.conftest import small_setup


class TestCleanRuns:
    def test_paranoia_run_matches_plain_run(self):
        config, trace = small_setup()
        plain = GPUSimulator(config).run(trace)
        with hooks.paranoia(True):
            checked = GPUSimulator(config).run(trace)
        assert checked.cycles == plain.cycles
        assert checked.l1_misses == plain.l1_misses
        assert checked.warp_instructions == plain.warp_instructions

    def test_every_checker_fires(self):
        config, trace = small_setup()  # btree: 2 kernels
        with hooks.paranoia(True):
            GPUSimulator(config).run(trace)
        stats = hooks.VERIFY_STATS
        assert stats["runs_checked"] >= 1
        assert stats["events_checked"] > 0
        assert stats["queue_scans"] >= 1
        assert stats["boundaries_checked"] == len(trace.kernels)
        assert stats["results_checked"] == 1


class TestSeededEngineMutation:
    """The ISSUE's acceptance demo: a dropped miss increment, injected
    behind ``REPRO_FAULT_INJECT``, must not survive paranoia mode."""

    def test_drop_miss_caught_at_first_boundary(self, monkeypatch):
        config, trace = small_setup()
        monkeypatch.setenv(FAULT_INJECT_ENV, f"drop-miss:{trace.name}")
        with hooks.paranoia(True):
            with pytest.raises(InvariantError, match="miss conservation"):
                GPUSimulator(config).run(trace)

    def test_drop_miss_invisible_without_paranoia(self, monkeypatch):
        # The fault itself is independent of verification: without the
        # hooks the mutated run completes and is exactly one miss short.
        config, trace = small_setup()
        clean = GPUSimulator(config).run(trace)
        monkeypatch.setenv(FAULT_INJECT_ENV, f"drop-miss:{trace.name}")
        mutated = GPUSimulator(config).run(trace)
        assert mutated.l1_hits + mutated.l1_misses == (
            mutated.memory_accesses - 1
        )
        assert mutated.l1_misses == clean.l1_misses - 1

    def test_drop_miss_ignores_other_workloads(self, monkeypatch):
        config, trace = small_setup()
        monkeypatch.setenv(FAULT_INJECT_ENV, "drop-miss:doesnotmatch")
        with hooks.paranoia(True):
            GPUSimulator(config).run(trace)  # must not raise


class TestSelfArming:
    def test_simulator_self_arms_from_env(self, monkeypatch):
        config, trace = small_setup(abbr="va", size=2, work_scale=0.05)
        monkeypatch.setenv(VERIFY_ENV, "1")
        assert not hooks.installed()
        GPUSimulator(config).run(trace)
        assert hooks.installed()
        assert hooks.VERIFY_STATS["runs_checked"] >= 1

    def test_falsy_env_values_do_not_arm(self, monkeypatch):
        config, trace = small_setup(abbr="va", size=2, work_scale=0.05)
        monkeypatch.setenv(VERIFY_ENV, "0")
        GPUSimulator(config).run(trace)
        assert not hooks.installed()

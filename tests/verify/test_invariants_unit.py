"""Invariant catalog unit tests on hand-built fakes and bare queues."""

import heapq
from types import SimpleNamespace

import pytest

from repro.engine.event import EventQueue
from repro.exceptions import InvariantError
from repro.mrc.cliff import Region
from repro.verify.invariants import (
    check_curve,
    check_prediction,
    check_queue,
    check_result,
)


def _noop():
    pass


class TestQueueConsistency:
    def test_clean_queue_passes(self):
        queue = EventQueue()
        for t in (3.0, 1.0, 2.0):
            queue.push(t, _noop)
        queue.pop_entry()
        check_queue(queue)

    def test_live_count_drift_detected(self):
        queue = EventQueue()
        queue.push(1.0, _noop)
        queue._live += 1
        with pytest.raises(InvariantError, match="live count drifted"):
            check_queue(queue)

    def test_heap_property_violation_detected(self):
        queue = EventQueue()
        for t in (1.0, 2.0, 3.0):
            queue.push(t, _noop)
        # Mutating a pushed entry's time behind the heap's back is
        # exactly the corruption the scan exists to catch.
        queue._heap[-1][0] = -99.0
        with pytest.raises(InvariantError, match="heap property"):
            check_queue(queue)

    def test_out_of_heap_marker_detected(self):
        queue = EventQueue()
        queue.push(1.0, _noop)
        entry = queue.pop_entry()
        heapq.heappush(queue._heap, entry)  # re-inserted without the flag
        with pytest.raises(InvariantError, match="out-of-heap"):
            check_queue(queue)


def _fake_result(**overrides):
    fields = dict(
        workload="fake",
        memory_accesses=100,
        l1_hits=60,
        l1_misses=40,
        llc_hits=20,
        llc_misses=15,
        extra={"l1_merged": 5},
        cycles=1000.0,
        memory_stall_fraction=0.4,
        warp_instructions=500,
        thread_instructions=500 * 32,
    )
    fields.update(overrides)
    return SimpleNamespace(**fields)


class TestCheckResult:
    def test_consistent_result_passes(self):
        check_result(_fake_result())

    def test_miss_conservation(self):
        with pytest.raises(InvariantError, match="miss conservation"):
            check_result(_fake_result(l1_misses=41))

    def test_llc_conservation(self):
        with pytest.raises(InvariantError, match="LLC conservation"):
            check_result(_fake_result(llc_hits=21))

    def test_f_mem_range(self):
        with pytest.raises(InvariantError, match="f_mem out of range"):
            check_result(_fake_result(memory_stall_fraction=1.5))

    def test_thread_warp_divisibility(self):
        with pytest.raises(InvariantError, match="whole multiple"):
            check_result(_fake_result(thread_instructions=500 * 32 + 1))


def _fake_curve(**overrides):
    fields = dict(
        workload="fake",
        mpki=[5.0, 4.0, 4.0, 1.0],
        miss_ratio=[0.5, 0.4, 0.4, 0.1],
    )
    fields.update(overrides)
    return SimpleNamespace(**fields)


class TestCheckCurve:
    def test_monotone_curve_passes(self):
        check_curve(_fake_curve())

    def test_mpki_inversion_detected(self):
        with pytest.raises(InvariantError, match="MPKI increases"):
            check_curve(_fake_curve(mpki=[5.0, 4.0, 4.5, 1.0]))

    def test_ratio_range(self):
        with pytest.raises(InvariantError, match="outside"):
            check_curve(_fake_curve(miss_ratio=[1.5, 0.4, 0.4, 0.1]))

    def test_ratio_inversion_detected(self):
        with pytest.raises(InvariantError, match="miss ratio increases"):
            check_curve(_fake_curve(miss_ratio=[0.5, 0.4, 0.45, 0.1]))


def _fake_prediction(region=Region.PRE_CLIFF, **overrides):
    # Profile: largest simulated size 64 at IPC 2.0, correction 1.1.
    profile = SimpleNamespace(
        workload="fake",
        largest=(64, 2.0),
        correction_factor=lambda: 1.1,
        f_mem=0.25,
    )
    predictor = SimpleNamespace(profile=profile)
    if region is Region.PRE_CLIFF:
        ipc = 2.0 * (128 / 64) * 1.1  # Eq. 2
        details = {"ipc_large": 2.0, "scale": 2.0}
    elif region is Region.CLIFF:
        ipc = 2.0 * (128 / 64) / (1 - 0.25)  # Eq. 3
        details = {"f_mem": 0.25, "scale": 2.0}
    else:  # POST_CLIFF, Eq. 4 anchored at size 96
        anchor_ipc = 2.0 * (96 / 64) / (1 - 0.25)
        ipc = anchor_ipc * (128 / 96) * 1.1
        details = {"f_mem": 0.25, "anchor_size": 96.0,
                   "anchor_ipc": anchor_ipc}
    fields = dict(
        workload="fake",
        target_size=128,
        ipc=ipc,
        region=region,
        correction_factor=1.1,
        details=details,
    )
    fields.update(overrides)
    return predictor, SimpleNamespace(**fields)


class TestCheckPrediction:
    @pytest.mark.parametrize(
        "region", (Region.PRE_CLIFF, Region.CLIFF, Region.POST_CLIFF)
    )
    def test_consistent_prediction_passes(self, region):
        predictor, result = _fake_prediction(region)
        check_prediction(predictor, result)

    @pytest.mark.parametrize(
        "region", (Region.PRE_CLIFF, Region.CLIFF, Region.POST_CLIFF)
    )
    def test_drifted_ipc_detected(self, region):
        predictor, result = _fake_prediction(region)
        result.ipc *= 1.001
        with pytest.raises(InvariantError, match="does not reproduce"):
            check_prediction(predictor, result)

    def test_correction_factor_mismatch(self):
        predictor, result = _fake_prediction()
        result.correction_factor = 1.2
        with pytest.raises(InvariantError, match="correction factor"):
            check_prediction(predictor, result)

    def test_eq4_anchor_mismatch(self):
        predictor, result = _fake_prediction(Region.POST_CLIFF)
        result.details = dict(result.details, anchor_ipc=999.0)
        with pytest.raises(InvariantError, match="anchor"):
            check_prediction(predictor, result)

"""Verify-subsystem fixtures: pristine hooks and env around every test.

Paranoia mode is process-global (module flags, patched methods), so a
leaked install would silently change the semantics of every later test.
The autouse fixture clears ``REPRO_VERIFY`` / ``REPRO_FAULT_INJECT`` and
force-uninstalls the hooks on both sides of each test.
"""

import pytest

from repro.gpu import GPUConfig
from repro.verify import hooks
from repro.workloads import STRONG_SCALING, build_trace


@pytest.fixture(autouse=True)
def _pristine_verify(monkeypatch):
    monkeypatch.delenv("REPRO_VERIFY", raising=False)
    monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
    hooks.uninstall()
    hooks.reset_stats()
    yield
    hooks.uninstall()
    hooks.reset_stats()


def small_setup(abbr="btree", size=4, work_scale=0.1, seed=0):
    """A sub-second real workload: (config, trace) for a scaled system."""
    config = GPUConfig.paper_baseline().scaled(size)
    trace = build_trace(
        STRONG_SCALING[abbr],
        work_scale=work_scale,
        capacity_scale=config.capacity_scale,
        seed=seed,
    )
    return config, trace

"""Serial vs. pooled execution must leave byte-identical store payloads
(modulo ``wall_time_s``, a host-time measurement)."""

import os

from repro.analysis.faults import ExecutionPolicy
from repro.analysis.parallel import ParallelRunner, RunRequest
from repro.analysis.simcache import ResultStore
from repro.verify.digest import payload_digest
from repro.workloads import STRONG_SCALING


def _requests():
    return [
        RunRequest("sim", STRONG_SCALING[abbr], size=4, work_scale=0.1,
                   seed=0)
        for abbr in ("va", "btree")
    ]


def _run(root, jobs):
    store = ResultStore(os.path.join(root, f"simcache-j{jobs}"))
    runner = ParallelRunner(store, jobs=jobs, policy=ExecutionPolicy())
    report = runner.run_batch_report(_requests())
    store.flush()
    return store, report


class TestSerialVsJobs:
    def test_pooled_payloads_digest_identically(self, tmp_path):
        serial_store, serial_report = _run(str(tmp_path), jobs=1)
        pooled_store, pooled_report = _run(str(tmp_path), jobs=2)
        assert serial_report.executed == len(_requests())
        assert pooled_report.executed == len(_requests())
        for request in _requests():
            serial_payload = serial_store.get(request.key)
            pooled_payload = pooled_store.get(request.key)
            assert serial_payload is not None
            assert pooled_payload is not None
            assert payload_digest(serial_payload) == payload_digest(
                pooled_payload
            )
            stripped = dict(serial_payload)
            stripped.pop("wall_time_s", None)
            pooled_stripped = dict(pooled_payload)
            pooled_stripped.pop("wall_time_s", None)
            assert stripped == pooled_stripped

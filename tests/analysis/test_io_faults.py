"""Injected filesystem faults at every persistence seam (satellite):
``ResultStore.flush``, ``Checkpointer.save`` and the trace/metrics
exporters survive ENOSPC and partial writes — pending data is kept in
memory, retried once the disk recovers, and a torn append never
corrupts a neighbouring record."""

import json
import os

import pytest

from repro.analysis.faults import FAULT_INJECT_ENV, reset_io_faults
from repro.analysis.simcache import ResultStore
from repro.checkpoint import Checkpointer
from repro.obs.export import (
    validate_trace_events,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.resilience import reset_disk_guard

FAULTS = ["enospc", "partial-write"]


def arm(monkeypatch, plan):
    """Arm a fault plan with the disk guard re-checking on every call,
    so a forced low state clears as soon as the fault budget is spent."""
    monkeypatch.setenv("REPRO_DISK_CHECK_INTERVAL", "0")
    monkeypatch.setenv(FAULT_INJECT_ENV, plan)
    reset_disk_guard()
    reset_io_faults()


def disarm(monkeypatch):
    monkeypatch.delenv(FAULT_INJECT_ENV, raising=False)
    reset_io_faults()


class TestStoreFlush:
    @pytest.mark.parametrize("fault", FAULTS)
    def test_failed_flush_keeps_records_pending_then_retries(
        self, tmp_path, monkeypatch, fault
    ):
        arm(monkeypatch, f"{fault}:store:1")
        store = ResultStore(str(tmp_path / "simcache"))
        with pytest.warns(UserWarning, match="keeping records pending"):
            store.put("k1", {"value": 1}, shard="va")
        # The run's result is still served from memory...
        assert store.get("k1") == {"value": 1}
        assert store.stats()["write_errors"] == 1
        # ...and the next flush (disk recovered) makes it durable.
        disarm(monkeypatch)
        assert store.flush() == 1
        # partial-write left a torn fragment behind, which the reload
        # quarantines; either way the record itself is fully recovered.
        reloaded = ResultStore(str(tmp_path / "simcache"))
        assert reloaded.contains("k1")
        expected_corrupt = 1 if fault == "partial-write" else 0
        assert reloaded.stats()["corrupt_lines"] == expected_corrupt

    def test_torn_append_is_isolated_by_the_newline_guard(
        self, tmp_path, monkeypatch
    ):
        arm(monkeypatch, "partial-write:store:1")
        store = ResultStore(str(tmp_path / "simcache"))
        with pytest.warns(UserWarning, match="keeping records pending"):
            store.put("k1", {"value": 1}, shard="va")
        shard = tmp_path / "simcache" / "va.jsonl"
        assert shard.exists() and not shard.read_text().endswith("\n")
        disarm(monkeypatch)
        store.put("k2", {"value": 2}, shard="va")  # retries k1 alongside
        # The torn fragment costs exactly one corrupt line; both real
        # records load and the shard is quarantined + salvaged.
        with pytest.warns(UserWarning, match="corrupt lines"):
            reloaded = ResultStore(str(tmp_path / "simcache"))
        assert reloaded.contains("k1") and reloaded.contains("k2")
        assert reloaded.stats()["corrupt_lines"] == 1
        assert reloaded.stats()["quarantined_shards"] == 1
        # The salvage rewrite left a clean shard for the *next* load.
        clean = ResultStore(str(tmp_path / "simcache"))
        assert clean.contains("k1") and clean.contains("k2")
        assert clean.stats()["corrupt_lines"] == 0

    def test_low_disk_guard_skips_the_flush_entirely(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_MIN_FREE_MB", str(10 ** 12))  # ~1 EB
        monkeypatch.setenv("REPRO_DISK_CHECK_INTERVAL", "0")
        reset_disk_guard()
        store = ResultStore(str(tmp_path / "simcache"))
        with pytest.warns(UserWarning, match="disk guard"):
            store.put("k1", {"value": 1}, shard="va")
        assert store.stats()["skipped_flushes"] == 1
        assert not (tmp_path / "simcache" / "va.jsonl").exists()
        assert store.get("k1") == {"value": 1}  # computation unaffected
        # Space recovers: the pending record flushes after all.
        monkeypatch.setenv("REPRO_MIN_FREE_MB", "0")
        reset_disk_guard()
        assert store.flush() == 1
        assert ResultStore(str(tmp_path / "simcache")).contains("k1")


class TestCheckpointSave:
    @pytest.mark.parametrize("fault", FAULTS)
    def test_failed_save_degrades_to_a_warning(
        self, tmp_path, monkeypatch, fault
    ):
        arm(monkeypatch, f"{fault}:checkpoint:1")
        ckpt = Checkpointer(str(tmp_path / "run"), run_key="k")
        with pytest.warns(UserWarning, match="continuing without this snapshot"):
            assert ckpt.save({"kernels_completed": 1, "state": [1]}) is False
        assert ckpt.saves == 0
        # The next boundary retries and the snapshot round-trips.
        disarm(monkeypatch)
        assert ckpt.save({"kernels_completed": 2, "state": [2]}) is True
        payload = ckpt.load_latest()
        assert payload is not None
        assert payload["kernels_completed"] == 2

    def test_low_disk_skips_the_save(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MIN_FREE_MB", str(10 ** 12))
        monkeypatch.setenv("REPRO_DISK_CHECK_INTERVAL", "0")
        reset_disk_guard()
        directory = str(tmp_path / "run")
        ckpt = Checkpointer(directory, run_key="k")
        with pytest.warns(UserWarning, match="disk guard"):
            assert ckpt.save({"kernels_completed": 1}) is False
        assert not os.path.exists(directory)  # nothing was even created


class TestExportSeams:
    @pytest.mark.parametrize("fault", FAULTS)
    def test_trace_export_survives(self, tmp_path, monkeypatch, fault):
        arm(monkeypatch, f"{fault}:trace:1")
        path = str(tmp_path / "trace.json")
        with pytest.warns(UserWarning, match="cannot write"):
            write_chrome_trace(path)
        assert not os.path.exists(path)
        disarm(monkeypatch)
        write_chrome_trace(path)
        document = json.load(open(path))
        assert validate_trace_events(document) == []

    @pytest.mark.parametrize("fault", FAULTS)
    def test_metrics_export_survives(self, tmp_path, monkeypatch, fault):
        arm(monkeypatch, f"{fault}:metrics:1")
        registry = MetricsRegistry()
        registry.inc("campaign.runs", 7)
        path = str(tmp_path / "metrics.json")
        with pytest.warns(UserWarning, match="cannot write"):
            snapshot = write_metrics(path, registry=registry)
        # The snapshot (the in-memory truth) survives the lost artifact.
        assert snapshot["counters"]["campaign.runs"] == 7
        assert not os.path.exists(path)
        disarm(monkeypatch)
        write_metrics(path, registry=registry)
        written = json.load(open(path))
        assert written["counters"]["campaign.runs"] == 7

    def test_low_disk_skips_exports_with_a_warning(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_MIN_FREE_MB", str(10 ** 12))
        monkeypatch.setenv("REPRO_DISK_CHECK_INTERVAL", "0")
        reset_disk_guard()
        path = str(tmp_path / "trace.json")
        with pytest.warns(UserWarning, match="disk space low"):
            write_chrome_trace(path)
        assert not os.path.exists(path)

"""Fault-tolerant execution tests: injected worker exceptions, retries,
timeouts, pool deaths, partial-progress merge, failure manifests, and
the cached-payload / REPRO_JOBS robustness satellites.

Faults are injected deterministically through ``REPRO_FAULT_INJECT``
(see :mod:`repro.analysis.faults` for the grammar), so every path runs
without patching simulator internals — the same hook CI uses.
"""

import json
import os

import pytest

from repro.analysis.faults import (
    FAILED,
    OK,
    TIMEOUT,
    BatchReport,
    ExecutionPolicy,
    FailureManifest,
    InjectedFaultError,
    RunOutcome,
    maybe_inject,
    parse_fault_plan,
)
from repro.analysis.parallel import ParallelRunner, RunRequest
from repro.analysis.runner import (
    CachedRunner,
    default_jobs,
    result_from_payload,
    safe_curve_from_payload,
)
from repro.analysis.simcache import ResultStore
from repro.exceptions import ExecutionError, ReproError
from repro.verify.digest import content_digest
from repro.workloads import get_benchmark

VA = get_benchmark("va", weak=True)
BP = get_benchmark("bp", weak=True)

# Tiny backoff keeps retry tests fast without changing their logic.
FAST = dict(backoff_base=0.001)


def store_at(tmp_path):
    return ResultStore(str(tmp_path / "simcache"))


def req(spec, size=8):
    return RunRequest("sim", spec, size=size)


class TestFaultPlan:
    def test_grammar(self):
        plan = parse_fault_plan("fail:sim|va:2, hang:mrc|,die:sim|bp")
        assert [d.action for d in plan] == ["fail", "hang", "die"]
        assert plan[0].prefix == "sim|va" and plan[0].arg == 2
        assert plan[1].arg is None

    @pytest.mark.parametrize(
        "bad", ["explode:sim|va", "fail", "fail:sim|va:two", "fail::1"]
    )
    def test_malformed_directive_rejected(self, bad):
        with pytest.raises(ReproError):
            parse_fault_plan(bad)

    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        maybe_inject("sim|abc", "sim", "va", attempt=1)

    def test_fail_respects_attempt_bound(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va:2")
        for attempt in (1, 2):
            with pytest.raises(InjectedFaultError):
                maybe_inject("sim|abc", "sim", "va", attempt)
        maybe_inject("sim|abc", "sim", "va", attempt=3)  # passes

    def test_prefix_must_match(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|bp")
        maybe_inject("sim|abc", "sim", "va", attempt=1)  # different bench

    def test_die_raises_in_serial_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "die:sim|va")
        with pytest.raises(InjectedFaultError, match="serial"):
            maybe_inject("sim|abc", "sim", "va", attempt=1, allow_exit=False)


class TestFailureIsolation:
    def test_one_failing_run_does_not_poison_the_batch(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        store = store_at(tmp_path)
        policy = ExecutionPolicy(max_retries=1, keep_going=True, **FAST)
        report = ParallelRunner(store, jobs=2, policy=policy).run_batch_report(
            [req(VA), req(BP)]
        )
        assert report.executed == 1
        assert store.contains(req(BP).key)
        (failure,) = report.failures
        assert failure.status == FAILED
        assert failure.attempts == 2  # first try + one retry
        assert "injected failure" in failure.error
        assert failure.shard == "va" and failure.kind == "sim"

    def test_failure_manifest_written_with_rerun_context(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        store = store_at(tmp_path)
        policy = ExecutionPolicy(max_retries=0, keep_going=True, **FAST)
        ParallelRunner(store, jobs=2, policy=policy).run_batch(
            [req(VA), req(BP)]
        )
        manifest = tmp_path / "failures" / "va.jsonl"
        assert manifest.exists()
        (record,) = [
            json.loads(line) for line in manifest.read_text().splitlines()
        ]
        assert record["status"] == FAILED
        assert record["key"] == req(VA).key
        assert record["kind"] == "sim" and record["shard"] == "va"
        assert record["size"] == 8 and record["seed"] == 0
        assert "InjectedFaultError" in record["error"]
        assert record["recorded_at"] > 0

    def test_partial_progress_survives_raised_batch(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        store = store_at(tmp_path)
        policy = ExecutionPolicy(max_retries=0, **FAST)  # keep_going=False
        with pytest.raises(ExecutionError, match="completed results"):
            ParallelRunner(store, jobs=2, policy=policy).run_batch(
                [req(VA), req(BP), req(BP, size=16)]
            )
        # Completed runs were merged and flushed before the error left.
        reloaded = ResultStore(str(tmp_path / "simcache"))
        assert reloaded.contains(req(BP).key)
        assert reloaded.contains(req(BP, size=16).key)

    def test_serial_path_isolates_failures_too(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        store = store_at(tmp_path)
        policy = ExecutionPolicy(max_retries=0, keep_going=True, **FAST)
        report = ParallelRunner(store, jobs=1, policy=policy).run_batch_report(
            [req(VA), req(BP)]
        )
        assert report.executed == 1
        assert store.contains(req(BP).key)


class TestRetries:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failure_retries_then_succeeds(
        self, tmp_path, monkeypatch, jobs
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va:2")
        store = store_at(tmp_path)
        policy = ExecutionPolicy(max_retries=2, **FAST)
        report = ParallelRunner(
            store, jobs=jobs, policy=policy
        ).run_batch_report([req(VA)])
        (outcome,) = report.outcomes
        assert outcome.ok and outcome.status == OK
        assert outcome.attempts == 3 and outcome.retried
        assert store.contains(req(VA).key)
        assert not (tmp_path / "failures").exists()  # no casualties

    def test_retry_exhaustion_records_final_attempt_count(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        store = store_at(tmp_path)
        policy = ExecutionPolicy(max_retries=2, keep_going=True, **FAST)
        report = ParallelRunner(store, jobs=2, policy=policy).run_batch_report(
            [req(VA)]
        )
        (outcome,) = report.outcomes
        assert outcome.status == FAILED and outcome.attempts == 3
        assert report.retries == 2


class TestTimeouts:
    def test_hung_run_times_out_and_spares_the_batch(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "hang:sim|va")
        store = store_at(tmp_path)
        policy = ExecutionPolicy(
            run_timeout=1.0, keep_going=True, max_retries=1, **FAST
        )
        report = ParallelRunner(store, jobs=2, policy=policy).run_batch_report(
            [req(VA), req(BP)]
        )
        assert report.executed == 1
        assert store.contains(req(BP).key)
        (failure,) = report.failures
        assert failure.status == TIMEOUT
        assert "timeout" in failure.error
        manifest = tmp_path / "failures" / "va.jsonl"
        assert manifest.exists()
        record = json.loads(manifest.read_text().splitlines()[0])
        assert record["status"] == TIMEOUT


class TestBrokenPoolRecovery:
    def test_worker_death_loses_no_completed_results(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "die:sim|va")
        store = store_at(tmp_path)
        policy = ExecutionPolicy(
            max_retries=1, keep_going=True, max_pool_deaths=2, **FAST
        )
        with pytest.warns(UserWarning, match="degrading to serial"):
            report = ParallelRunner(
                store, jobs=2, policy=policy
            ).run_batch_report([req(VA), req(BP), req(BP, size=16)])
        # The repeatedly dying run degrades the batch to serial execution,
        # where the injection raises instead of killing the host; the two
        # innocent runs complete either way.
        assert report.pool_deaths >= 1
        assert report.degraded_to_serial
        assert report.executed == 2
        assert store.contains(req(BP).key)
        assert store.contains(req(BP, size=16).key)
        (failure,) = report.failures
        assert failure.status == FAILED and failure.shard == "va"


class TestAcceptanceScenario:
    """One raising run + one hung run in the same batch: every other
    result merges, each casualty gets a manifest entry, and with
    keep_going the batch reports instead of raising."""

    def test_raise_plus_hang_spares_the_rest(self, tmp_path, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_INJECT", "fail:sim|va,hang:mcm|va"
        )
        store = store_at(tmp_path)
        policy = ExecutionPolicy(
            max_retries=1, run_timeout=1.0, keep_going=True, **FAST
        )
        hung = RunRequest("mcm", VA, size=4, work_scale=4.0)
        survivors = [req(BP), req(BP, size=16), RunRequest("mrc", BP)]
        report = ParallelRunner(store, jobs=2, policy=policy).run_batch_report(
            [req(VA), hung] + survivors
        )
        assert report.executed == len(survivors)
        for request in survivors:
            assert store.contains(request.key)
        assert {f.status for f in report.failures} == {FAILED, TIMEOUT}
        manifest = tmp_path / "failures" / "va.jsonl"
        records = [
            json.loads(line)
            for line in manifest.read_text().splitlines()
        ]
        assert {r["status"] for r in records} == {FAILED, TIMEOUT}
        assert "failed" in report.summary() and "timed out" in report.summary()


class TestCachedRunnerWiring:
    def test_policy_and_health_flow_through_prefetch(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        policy = ExecutionPolicy(max_retries=0, keep_going=True, **FAST)
        runner = CachedRunner(str(tmp_path / "simcache"), jobs=2, policy=policy)
        executed = runner.prefetch([req(VA), req(BP)])
        assert executed == 1
        stats = runner.stats()
        assert stats["exec_ok"] == 1
        assert stats["exec_failed"] == 1
        assert stats["exec_timeout"] == 0
        assert "1 failed" in runner.execution_health()
        assert runner.last_report is not None
        assert len(runner.last_report.failures) == 1

    def test_health_accumulates_even_when_prefetch_raises(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        policy = ExecutionPolicy(max_retries=0, **FAST)
        runner = CachedRunner(str(tmp_path / "simcache"), jobs=2, policy=policy)
        with pytest.raises(ExecutionError):
            runner.prefetch([req(VA), req(BP)])
        assert runner.stats()["exec_failed"] == 1
        assert runner.stats()["exec_ok"] == 1


class TestWorkflowDegradation:
    def test_prefetch_failure_degrades_to_in_process(self, monkeypatch):
        from repro.core.workflow import predict_strong_scaling
        from tests.analysis.test_experiments_with_fakes import FakeRunner

        class FlakyPrefetchRunner(FakeRunner):
            def prefetch(self, requests):
                raise ExecutionError("pool exploded")

        with pytest.warns(UserWarning, match="parallel prefetch failed"):
            study = predict_strong_scaling(
                get_benchmark("pf"), runner=FlakyPrefetchRunner()
            )
        # The study still produced predictions via the lazy path.
        assert study.predictions["scale-model"]


class TestMergeExceptionSafety:
    def test_staged_records_flush_when_a_put_raises(self, tmp_path):
        poison_key = req(BP, size=16).key

        class PoisonedStore(ResultStore):
            def put(self, key, payload, shard="misc"):
                if key == poison_key:
                    raise ValueError("disk full")
                super().put(key, payload, shard=shard)

        store = PoisonedStore(str(tmp_path / "simcache"))
        runner = ParallelRunner(store, jobs=1)
        with pytest.raises(ValueError, match="disk full"):
            runner.run_batch([req(BP), req(BP, size=16), req(VA)])
        # The batching window was restored and everything staged before
        # (and despite) the failure reached disk.
        assert store.flush_every == 1
        reloaded = ResultStore(str(tmp_path / "simcache"))
        assert reloaded.contains(req(BP).key)

    def test_merge_preserves_flush_every(self, tmp_path):
        store = ResultStore(str(tmp_path / "simcache"), flush_every=5)
        ParallelRunner(store, jobs=1).run_batch([req(VA)])
        assert store.flush_every == 5


class TestSchemaDriftSatellite:
    def _drift_shard(self, root, mutate):
        path = os.path.join(root, "va.jsonl")
        records = [
            json.loads(line)
            for line in open(path)
            if line.strip()
        ]
        for record in records:
            mutate(record["payload"])
            # A schema-drifted record written by a different code version
            # is internally consistent: its digest matches its payload.
            # (A digest that does NOT match is a different failure mode,
            # covered by tests/analysis/test_simcache_digests.py.)
            if "digest" in record:
                record["digest"] = content_digest(record["payload"])
        with open(path, "w") as fh:
            for record in records:
                fh.write(json.dumps(record) + "\n")

    def test_missing_field_is_a_miss_not_a_crash(self, tmp_path):
        root = str(tmp_path / "simcache")
        CachedRunner(root).simulate(VA, 8)
        self._drift_shard(root, lambda p: p.pop("cycles"))
        runner = CachedRunner(root)
        with pytest.warns(UserWarning, match="schema"):
            result = runner.simulate(VA, 8)
        assert result.cycles > 0
        assert runner.misses == 1 and runner.hits == 0
        assert runner.stats()["schema_mismatches"] == 1
        # The recomputed record replaced the drifted one.
        assert runner.simulate(VA, 8).cycles == result.cycles

    def test_unknown_extra_field_is_a_miss(self, tmp_path):
        root = str(tmp_path / "simcache")
        CachedRunner(root).simulate_mcm(VA, 4, work_scale=4.0)
        self._drift_shard(root, lambda p: p.__setitem__("bogus_field", 1))
        runner = CachedRunner(root)
        with pytest.warns(UserWarning, match="schema"):
            runner.simulate_mcm(VA, 4, work_scale=4.0)
        assert runner.misses == 1
        assert runner.stats()["schema_mismatches"] == 1

    def test_drifted_mrc_payload_is_a_miss(self, tmp_path):
        root = str(tmp_path / "simcache")
        CachedRunner(root).miss_rate_curve(VA)
        self._drift_shard(root, lambda p: p.pop("mpki"))
        runner = CachedRunner(root)
        with pytest.warns(UserWarning, match="schema"):
            curve = runner.miss_rate_curve(VA)
        assert curve.mpki
        assert runner.stats()["schema_mismatches"] == 1

    def test_result_from_payload_contract(self):
        from dataclasses import asdict

        good = asdict(CachedRunner(None).simulate(VA, 8))
        assert result_from_payload(good) is not None
        assert result_from_payload(None) is None
        assert result_from_payload({}) is None
        missing = dict(good)
        missing.pop("workload")
        assert result_from_payload(missing) is None
        extra = dict(good, not_a_field=1)
        assert result_from_payload(extra) is None
        invalid = dict(good, cycles=-1.0)  # rejected by the record itself
        assert result_from_payload(invalid) is None

    def test_safe_curve_from_payload_contract(self):
        assert safe_curve_from_payload(None) is None
        assert safe_curve_from_payload({"workload": "va"}) is None


class TestDefaultJobsSatellite:
    def test_invalid_repro_jobs_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.warns(UserWarning, match="REPRO_JOBS='banana'"):
            jobs = default_jobs()
        assert jobs >= 1

    def test_valid_repro_jobs_silent(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3


class TestManifestAndReportUnits:
    def test_manifest_disabled_without_root(self):
        manifest = FailureManifest(None)
        outcome = RunOutcome("k", "sim", "va", FAILED)
        assert manifest.append([outcome]) == 0
        assert manifest.path_for("va") is None

    def test_manifest_appends_across_calls(self, tmp_path):
        manifest = FailureManifest(str(tmp_path / "failures"))
        outcome = RunOutcome("k", "sim", "va", FAILED, error="boom")
        assert manifest.append([outcome]) == 1
        assert manifest.append([outcome]) == 1
        lines = open(manifest.path_for("va")).read().splitlines()
        assert len(lines) == 2

    def test_report_summary_counts(self):
        report = BatchReport(
            outcomes=(
                RunOutcome("a", "sim", "va", OK, attempts=2),
                RunOutcome("b", "sim", "bp", FAILED, attempts=3),
                RunOutcome("c", "mrc", "va", TIMEOUT),
            ),
            pool_deaths=1,
            degraded_to_serial=True,
        )
        assert report.executed == 1
        assert len(report.failures) == 2
        assert report.retries == 3
        text = report.summary()
        assert "1 ok" in text and "1 failed" in text
        assert "1 timed out" in text and "degraded to serial" in text


class TestCliKeepGoing:
    """End-to-end acceptance: with --keep-going the CLI exits with a
    failure summary (code 1), not a traceback; without it, code 2."""

    def _main(self, tmp_path, capsys, *extra):
        from repro.analysis.cli import main

        code = main([
            "fig1", "--benchmarks", "pf",
            "--cache", str(tmp_path / "simcache"),
            "--jobs", "1", *extra,
        ])
        return code, capsys.readouterr().err

    def test_keep_going_exits_one_with_summary(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|pf")
        code, err = self._main(tmp_path, capsys, "--keep-going")
        assert code == 1
        assert "completed with failures: fig1" in err
        assert "execution:" in err  # health summary still printed

    def test_without_keep_going_exits_two(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|pf")
        code, err = self._main(tmp_path, capsys)
        assert code == 2
        assert "error:" in err

    def test_healthy_run_exits_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_FAULT_INJECT", raising=False)
        from repro.analysis.cli import main

        code = main([
            "table1", "--cache", str(tmp_path / "simcache"), "--jobs", "1",
        ])
        assert code == 0
        assert "execution: 0 ok" in capsys.readouterr().err


class TestCliFlags:
    def test_parser_accepts_fault_flags(self):
        from repro.analysis.cli import build_parser, build_policy

        args = build_parser().parse_args(
            ["fig4", "--max-retries", "5", "--run-timeout", "30",
             "--keep-going"]
        )
        policy = build_policy(args)
        assert policy.max_retries == 5
        assert policy.run_timeout == 30.0
        assert policy.keep_going is True

    def test_parser_defaults_match_policy_defaults(self):
        from repro.analysis.cli import build_parser, build_policy

        policy = build_policy(build_parser().parse_args(["fig4"]))
        assert policy.max_retries == ExecutionPolicy().max_retries
        assert policy.run_timeout is None
        assert policy.keep_going is False

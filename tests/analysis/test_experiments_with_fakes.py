"""Experiment-runner tests against a fake cached runner.

Real experiment runs are exercised by the benchmark harness; these tests
validate the experiment logic (error bookkeeping, summaries, rendering)
without simulation cost.
"""

import pytest

from repro.analysis import experiments as exp
from repro.gpu.results import SimulationResult
from repro.mrc.curve import MissRateCurve
from repro.units import MB

PER_SM_CAP = 34 * MB / 128


class FakeRunner:
    """Drop-in CachedRunner with analytic IPC curves."""

    def __init__(self, per_sm_ipc=30.0, exponent=1.0, cliff_at=None,
                 boost=3.0, mpki=(3.0, 3.0, 3.0, 3.0, 3.0)):
        self.per_sm_ipc = per_sm_ipc
        self.exponent = exponent
        self.cliff_at = cliff_at
        self.boost = boost
        self.mpki = mpki
        self.calls = []

    def _ipc(self, n):
        ipc = self.per_sm_ipc * 8 * (n / 8) ** self.exponent
        if self.cliff_at is not None and n >= self.cliff_at:
            ipc *= self.boost
        return ipc

    def _result(self, spec, n, work_scale, wall=1.0):
        self.calls.append((spec.abbr, n, work_scale))
        ipc = self._ipc(n)
        return SimulationResult(
            workload=spec.abbr, system=f"{n}", num_sms=n,
            cycles=1000.0, thread_instructions=int(ipc * 1000),
            warp_instructions=int(ipc * 1000) // 32,
            memory_accesses=1, memory_stall_fraction=1.0 - 1.0 / self.boost,
            wall_time_s=wall * work_scale * (1 + n / 128),
        )

    def simulate(self, spec, n, work_scale=1.0, seed=0):
        return self._result(spec, n, work_scale)

    def simulate_mcm(self, spec, chiplets, work_scale, seed=0):
        return self._result(spec, chiplets, work_scale)

    def miss_rate_curve(self, spec, work_scale=1.0, method="stack", seed=0):
        caps = tuple(int(PER_SM_CAP * 8 * 2**i) for i in range(5))
        return MissRateCurve(spec.abbr, caps, self.mpki)


class TestFigure1WithFakes:
    def test_linear_curves_classified(self):
        result = exp.figure1_scaling(("pf",), FakeRunner())
        assert result.measured_class["pf"] == "linear"
        assert "pf" in result.as_text()
        assert result.plot("pf")

    def test_cliff_classified_super(self):
        runner = FakeRunner(cliff_at=128, boost=3.0)
        result = exp.figure1_scaling(("dct",), runner)
        assert result.measured_class["dct"] == "super-linear"
        assert result.all_match


class TestFigure4WithFakes:
    def test_linear_world_scale_model_wins_vs_log(self):
        result = exp.figure4_strong_accuracy(
            128, benchmarks=("pf", "ht"), runner=FakeRunner()
        )
        assert result.mean_error("scale-model") < 0.01
        assert result.mean_error("logarithmic") > 0.5
        assert result.best_method() != "logarithmic"
        text = result.as_text()
        assert "avg" in text and "max" in text

    def test_cliff_world_eq3_exact(self):
        runner = FakeRunner(
            cliff_at=128, boost=2.5, mpki=(2.0, 2.0, 2.0, 2.0, 0.1)
        )
        result = exp.figure4_strong_accuracy(
            128, benchmarks=("dct",), runner=runner
        )
        # f_mem = 1 - 1/boost makes Eq. 3 exact by construction.
        assert result.errors["scale-model"]["dct"] < 1e-9
        assert result.errors["proportional"]["dct"] == pytest.approx(0.6)


class TestFigure6And7WithFakes:
    def test_weak_accuracy(self):
        results = exp.figure6_weak_accuracy(runner=FakeRunner())
        assert set(results) == {32, 64, 128}
        assert results[128].mean_error("scale-model") < 0.01

    def test_weak_runs_scale_inputs(self):
        runner = FakeRunner()
        exp.figure6_weak_accuracy(runner=runner, target_sizes=(32,))
        assert ("va", 32, 4.0) in runner.calls

    def test_speedup_shape(self):
        result = exp.figure7_speedup(FakeRunner())
        assert result.average(32) < result.average(64) < result.average(128)
        assert "Figure 7" in result.as_text()


class TestFigure8WithFakes:
    def test_mcm_accuracy(self):
        result = exp.figure8_mcm_accuracy(FakeRunner())
        assert result.scenario == "mcm-weak"
        assert result.scale_sizes == (4, 8)
        assert result.mean_error("scale-model") < 0.01
        assert len(result.errors["scale-model"]) == 5


class TestFigure5WithFakes:
    def test_curves_rendered(self):
        result = exp.figure5_prediction_curves(("pf",), FakeRunner())
        assert result.real["pf"][128] > 0
        assert result.predicted["pf"]["scale-model"][128] > 0
        assert "Figure 5: pf" in result.as_text()


class TestStaticTables:
    def test_table1(self):
        text = exp.table1_text()
        assert "34 MB, 32 slices" in text
        assert "2.125 MB, 2 slices" in text

    def test_table5(self):
        text = exp.table5_text()
        assert "16" in text and "1.7 GHz" in text

"""Content-addressed simcache records: digest on write, verify on read."""

import json
import os

from repro.analysis.simcache import ResultStore
from repro.verify.digest import content_digest


def _shard_path(root):
    files = [f for f in os.listdir(root) if f.endswith(".jsonl")]
    assert len(files) == 1
    return os.path.join(root, files[0])


def _fresh_store(tmp_path, payloads):
    root = os.path.join(tmp_path, "simcache")
    store = ResultStore(root)
    for key, payload in payloads.items():
        store.put(key, payload, shard="bench")
    store.flush()
    return root


PAYLOADS = {
    "sim|one": {"cycles": 10.0, "l1_misses": 3},
    "sim|two": {"cycles": 20.0, "l1_misses": 5},
}


class TestDigestOnWrite:
    def test_every_record_carries_a_matching_digest(self, tmp_path):
        root = _fresh_store(tmp_path, PAYLOADS)
        with open(_shard_path(root)) as handle:
            records = [json.loads(line) for line in handle if line.strip()]
        assert len(records) == len(PAYLOADS)
        for record in records:
            assert record["digest"] == content_digest(record["payload"])


class TestVerifyOnRead:
    def test_clean_reload_counts_no_mismatches(self, tmp_path):
        root = _fresh_store(tmp_path, PAYLOADS)
        reloaded = ResultStore(root)
        assert reloaded.get("sim|one") == PAYLOADS["sim|one"]
        assert reloaded.stats()["digest_mismatches"] == 0

    def test_corrupt_payload_degrades_to_miss(self, tmp_path):
        root = _fresh_store(tmp_path, PAYLOADS)
        shard = _shard_path(root)
        with open(shard) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        # Alter one payload but keep its recorded digest: still valid
        # JSON, so only the digest check can catch it.
        assert lines[0]["key"] == "sim|one"
        lines[0]["payload"]["cycles"] = 999.0
        with open(shard, "w") as handle:
            for record in lines:
                handle.write(json.dumps(record) + "\n")
        reloaded = ResultStore(root)
        assert reloaded.get("sim|one") is None
        assert reloaded.get("sim|two") == PAYLOADS["sim|two"]
        stats = reloaded.stats()
        assert stats["digest_mismatches"] == 1
        assert stats["corrupt_lines"] == 0
        assert stats["quarantined_shards"] == 1

    def test_quarantine_salvage_survives_another_reload(self, tmp_path):
        root = _fresh_store(tmp_path, PAYLOADS)
        shard = _shard_path(root)
        with open(shard) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        lines[0]["payload"]["cycles"] = 999.0
        with open(shard, "w") as handle:
            for record in lines:
                handle.write(json.dumps(record) + "\n")
        ResultStore(root)  # quarantines + salvages the good record
        salvaged = ResultStore(root)
        assert salvaged.get("sim|two") == PAYLOADS["sim|two"]
        assert salvaged.stats()["digest_mismatches"] == 0

    def test_legacy_records_without_digest_still_load(self, tmp_path):
        root = os.path.join(tmp_path, "simcache")
        os.makedirs(root)
        with open(os.path.join(root, "legacy.jsonl"), "w") as handle:
            handle.write(
                json.dumps({"key": "sim|old", "payload": {"cycles": 5.0}})
                + "\n"
            )
        store = ResultStore(root)
        assert store.get("sim|old") == {"cycles": 5.0}
        assert store.stats()["digest_mismatches"] == 0

"""Artifact-bundle export tests (using the fake runner)."""

import json
import os

import pytest

from repro.analysis.artifact import (
    configs_record,
    export_artifact,
    strong_benchmark_record,
    weak_benchmark_record,
)
from tests.analysis.test_experiments_with_fakes import FakeRunner


class TestRecords:
    def test_strong_record_shape(self):
        record = strong_benchmark_record("pf", FakeRunner())
        assert record["scenario"] == "strong"
        assert set(record["scale_model_ipc"]) == {"8", "16"}
        assert set(record["target_ipc"]) == {"32", "64", "128"}
        assert len(record["miss_rate_curve"]["mpki"]) == 5
        assert "scale-model" in record["predictions"]
        assert record["errors"]["scale-model"]["128"] < 0.01

    def test_weak_record_shape(self):
        record = weak_benchmark_record("va", FakeRunner())
        assert record["scenario"] == "weak"
        assert "miss_rate_curve" not in record  # not needed under weak
        assert "simulation_seconds" in record

    def test_configs_record(self):
        record = configs_record()
        assert len(record["monolithic"]) == 5
        assert record["mcm_target"]["#chiplets"] == "16"


class TestExport:
    def test_export_writes_bundle(self, tmp_path):
        out = str(tmp_path / "artifact")
        counts = export_artifact(
            out, runner=FakeRunner(),
            benchmarks=("pf", "ht"), weak_benchmarks=("va",),
        )
        assert counts == {"strong": 2, "weak": 1}
        assert os.path.exists(os.path.join(out, "configs.json"))
        assert os.path.exists(os.path.join(out, "strong", "pf.json"))
        assert os.path.exists(os.path.join(out, "weak", "va.json"))
        with open(os.path.join(out, "summary.json")) as fh:
            summary = json.load(fh)
        assert set(summary["strong"]) == {"pf", "ht"}

    def test_bundle_round_trips_through_cli(self, tmp_path):
        """A record contains exactly what gpu-scale-model needs."""
        from repro.core.cli import build_parser, run
        import io

        record = strong_benchmark_record("pf", FakeRunner())
        ipcs = record["scale_model_ipc"]
        mpki = [str(m) for m in record["miss_rate_curve"]["mpki"]]
        args = build_parser().parse_args(
            [str(ipcs["8"]), str(ipcs["16"]), *mpki,
             "--small-sms", "8", "--f-mem", str(record["f_mem"])]
        )
        out = io.StringIO()
        assert run(args, out=out) == 0
        predicted_128 = record["predictions"]["scale-model"]["128"]
        assert f"{predicted_128:.1f}" in out.getvalue()

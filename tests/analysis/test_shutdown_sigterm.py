"""Graceful-shutdown acceptance (satellite): SIGTERM mid-batch drains a
real subprocess — exit code 75, a parseable store holding every
completed result, ``interrupted`` entries in the failure manifest, and
a rerun of the same campaign that completes it from the cache."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.analysis.simcache import ResultStore
from repro.resilience import EXIT_INTERRUPTED, EXIT_OK

SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

# A small campaign slow enough (~3 s per run) that a SIGTERM a few
# seconds after READY is guaranteed to land mid-batch.  Completed
# results merge to the store when the batch winds down (the drain path
# merges too), so the parent cannot watch the shard for progress — it
# waits for READY and then signals on a timer.
CHILD = """\
import os, sys

from repro.analysis.faults import ExecutionPolicy
from repro.analysis.parallel import ParallelRunner, RunRequest
from repro.analysis.simcache import ResultStore
from repro.exceptions import ShutdownRequested
from repro.resilience import EXIT_INTERRUPTED, EXIT_OK, install_shutdown_handlers
from repro.workloads import STRONG_SCALING

root, jobs = sys.argv[1], int(sys.argv[2])
install_shutdown_handlers()
store = ResultStore(os.path.join(root, "simcache"))
runner = ParallelRunner(store, jobs=jobs, policy=ExecutionPolicy(keep_going=True))
requests = [
    RunRequest("sim", STRONG_SCALING["va"], size=8, work_scale=2.0, seed=seed)
    for seed in range(6)
]
print("READY", flush=True)
try:
    report = runner.run_batch_report(requests)
except (ShutdownRequested, KeyboardInterrupt):
    sys.exit(EXIT_INTERRUPTED)
print("COMPLETED", report.executed, flush=True)
sys.exit(EXIT_OK)
"""


def campaign_env():
    env = dict(os.environ, PYTHONPATH=SRC, REPRO_NO_FSYNC="1")
    env.pop("REPRO_FAULT_INJECT", None)
    return env


@pytest.mark.parametrize("jobs", [1, 2])
def test_sigterm_mid_batch_drains_resumably(tmp_path, jobs):
    script = tmp_path / "campaign.py"
    script.write_text(CHILD)
    root = tmp_path / "results"
    argv = [sys.executable, str(script), str(root), str(jobs)]
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=campaign_env(),
    )
    try:
        assert proc.stdout.readline().strip() == "READY"
        # ~5 s into an ~18 s (serial) / ~9 s (pool) batch: some runs are
        # done, some are in flight, some were never started.
        time.sleep(5.0)
        assert proc.poll() is None, proc.communicate()
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    assert proc.returncode == EXIT_INTERRUPTED, (out, err)
    assert "draining" in err  # the coordinator announced the drain
    # Every result completed before the drain is durable and parseable.
    store = ResultStore(str(root / "simcache"))
    completed = len(store)
    assert completed >= 1
    assert store.stats()["corrupt_lines"] == 0
    # The undone remainder is on record as interrupted, with its keys.
    manifest = root / "failures" / "va.jsonl"
    records = [
        json.loads(line)
        for line in manifest.read_text().splitlines()
        if line.strip()
    ]
    interrupted = [r for r in records if r["status"] == "interrupted"]
    assert interrupted
    assert all(r["key"] for r in interrupted)
    assert completed + len(interrupted) == 6
    # Rerunning the same campaign completes it from the cache.
    rerun = subprocess.run(
        argv, capture_output=True, text=True, timeout=300, env=campaign_env(),
    )
    assert rerun.returncode == EXIT_OK, (rerun.stdout, rerun.stderr)
    assert "COMPLETED" in rerun.stdout
    assert len(ResultStore(str(root / "simcache"))) == 6

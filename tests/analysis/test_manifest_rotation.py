"""Failure-manifest rotation: oversized shards compact to per-key
streak records that preserve circuit-breaker semantics (satellite of
the campaign-resilience work)."""

import json
import os

import pytest

from repro.analysis.faults import (
    FAILED,
    MANIFEST_MAX_MB_ENV,
    OK,
    STREAK,
    TIMEOUT,
    FailureManifest,
    RunOutcome,
    manifest_max_bytes,
)
from repro.resilience import CircuitBreaker

#: Rotation ceiling small enough that any append rotates (~104 bytes).
_TINY = "0.0001"


def outcome(key, status, shard="va"):
    return RunOutcome(
        key=key, kind="sim", shard=shard, status=status,
        error=None if status == OK else "boom",
    )


@pytest.fixture
def root(tmp_path, monkeypatch):
    monkeypatch.delenv(MANIFEST_MAX_MB_ENV, raising=False)
    return str(tmp_path / "failures")


def read_records(path):
    return [json.loads(line) for line in open(path) if line.strip()]


class TestRotation:
    def test_oversized_shard_compacts_to_streaks(self, root, monkeypatch):
        monkeypatch.setenv(MANIFEST_MAX_MB_ENV, _TINY)
        manifest = FailureManifest(root)
        with pytest.warns(UserWarning, match="rotated"):
            manifest.append(
                [outcome("sim|aaa", FAILED)] * 3
                + [outcome("sim|bbb", TIMEOUT)]
            )
        records = read_records(manifest.path_for("va"))
        assert {r["status"] for r in records} == {STREAK}
        by_key = {r["key"]: r["count"] for r in records}
        assert by_key == {"sim|aaa": 3, "sim|bbb": 1}
        # Raw history survives exactly one rotation, off the breaker's
        # *.jsonl scan.
        assert os.path.exists(manifest.path_for("va") + ".old")
        assert len(read_records(manifest.path_for("va") + ".old")) == 4

    def test_zero_keys_are_dropped_from_the_compact_shard(
        self, root, monkeypatch
    ):
        monkeypatch.setenv(MANIFEST_MAX_MB_ENV, _TINY)
        manifest = FailureManifest(root)
        with pytest.warns(UserWarning, match="rotated"):
            manifest.append(
                [outcome("sim|aaa", FAILED), outcome("sim|aaa", OK),
                 outcome("sim|bbb", FAILED)]
            )
        records = read_records(manifest.path_for("va"))
        assert [r["key"] for r in records] == ["sim|bbb"]

    def test_zero_ceiling_disables_rotation(self, root, monkeypatch):
        monkeypatch.setenv(MANIFEST_MAX_MB_ENV, "0")
        assert manifest_max_bytes() == 0
        manifest = FailureManifest(root)
        manifest.append([outcome("sim|aaa", FAILED)] * 8)
        records = read_records(manifest.path_for("va"))
        assert len(records) == 8
        assert all(r["status"] == FAILED for r in records)
        assert not os.path.exists(manifest.path_for("va") + ".old")

    def test_default_ceiling_leaves_small_shards_alone(self, root):
        manifest = FailureManifest(root)
        manifest.append([outcome("sim|aaa", FAILED)] * 4)
        assert all(
            r["status"] == FAILED
            for r in read_records(manifest.path_for("va"))
        )


class TestBreakerSemantics:
    def test_streaks_survive_rotation(self, root, monkeypatch):
        manifest = FailureManifest(root)
        manifest.append([outcome("sim|bad", FAILED)] * 3)
        before = CircuitBreaker(root, threshold=3)
        assert before.tripped("sim|bad")
        monkeypatch.setenv(MANIFEST_MAX_MB_ENV, _TINY)
        with pytest.warns(UserWarning, match="rotated"):
            manifest.append([outcome("sim|other", FAILED)])
        after = CircuitBreaker(root, threshold=3)
        assert after.consecutive_failures("sim|bad") == 3
        assert after.tripped("sim|bad")
        assert after.consecutive_failures("sim|other") == 1
        assert not after.tripped("sim|other")

    def test_ok_after_rotation_still_closes_the_breaker(
        self, root, monkeypatch
    ):
        monkeypatch.setenv(MANIFEST_MAX_MB_ENV, _TINY)
        manifest = FailureManifest(root)
        with pytest.warns(UserWarning, match="rotated"):
            manifest.append([outcome("sim|bad", FAILED)] * 3)
        assert CircuitBreaker(root, threshold=3).tripped("sim|bad")
        with pytest.warns(UserWarning, match="rotated"):
            manifest.append([outcome("sim|bad", OK)])
        breaker = CircuitBreaker(root, threshold=3)
        assert breaker.consecutive_failures("sim|bad") == 0
        assert not breaker.tripped("sim|bad")

    def test_repeated_rotations_accumulate_streaks(self, root, monkeypatch):
        monkeypatch.setenv(MANIFEST_MAX_MB_ENV, _TINY)
        manifest = FailureManifest(root)
        for _ in range(3):
            with pytest.warns(UserWarning, match="rotated"):
                manifest.append([outcome("sim|bad", FAILED)])
        # Each rotation seeded the next scan from its streak record.
        assert CircuitBreaker(root, threshold=3).tripped("sim|bad")

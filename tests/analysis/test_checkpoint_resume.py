"""Checkpoint/resume wired through the execution layer.

Covers the ``die-at-kernel`` fault-injection directive, the post-save
kill hook, and the end-to-end recovery contract: a run killed right
after a snapshot resumes on retry and produces a payload identical to
an uninterrupted run, with the resume recorded in the store stats, the
batch report and the execution-health summary.
"""

import dataclasses

import pytest

from repro.analysis.faults import (
    FAULT_INJECT_ENV,
    OK,
    BatchReport,
    ExecutionPolicy,
    InjectedFaultError,
    RunOutcome,
    kernel_kill_hook,
    maybe_inject,
    parse_fault_plan,
)
from repro.analysis.parallel import ParallelRunner, RunRequest
from repro.analysis.runner import CachedRunner, default_checkpoint_policy
from repro.analysis.simcache import ResultStore
from repro.checkpoint import CheckpointPolicy
from repro.exceptions import ReproError
from repro.workloads import STRONG_SCALING

# Strong-scaling btree at a reduced work scale: the cheapest catalog
# workload with more than one kernel, i.e. with a checkpoint boundary.
SPEC = STRONG_SCALING["btree"]
SIZE = 8
WORK_SCALE = 0.25
KILL_PLAN = "die-at-kernel:sim|btree:1"


def deterministic(result) -> dict:
    payload = dataclasses.asdict(result)
    payload.pop("wall_time_s")
    return payload


class TestDirectiveParsing:
    def test_die_at_kernel_parses(self):
        (directive,) = parse_fault_plan("die-at-kernel:sim|va:2")
        assert directive.action == "die-at-kernel"
        assert directive.prefix == "sim|va"
        assert directive.arg == 2.0

    def test_die_at_kernel_requires_boundary(self):
        with pytest.raises(ReproError, match="kernel boundary"):
            parse_fault_plan("die-at-kernel:sim|va")

    def test_maybe_inject_ignores_die_at_kernel(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "die-at-kernel:sim|va:1")
        # Armed via the checkpointer hook, not per attempt: no raise.
        maybe_inject("sim|abc", "sim", "va", attempt=1, allow_exit=False)


class TestKernelKillHook:
    def test_none_without_plan(self, monkeypatch):
        monkeypatch.delenv(FAULT_INJECT_ENV, raising=False)
        assert kernel_kill_hook("sim|abc", "sim", "va") is None

    def test_none_without_matching_prefix(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "die-at-kernel:sim|va:1")
        assert kernel_kill_hook("sim|abc", "sim", "bfs") is None

    def test_serial_mode_raises_at_boundary(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "die-at-kernel:sim|va:1")
        hook = kernel_kill_hook("sim|abc", "sim", "va", allow_exit=False)
        hook(2)  # not the armed boundary: no-op
        with pytest.raises(InjectedFaultError, match="boundary 1"):
            hook(1)


class TestReportPlumbing:
    def outcome(self, **overrides) -> RunOutcome:
        fields = dict(
            key="k", kind="sim", shard="x", status=OK, attempts=2,
            resumed_from_kernel=1, cycles_saved=1234.0,
        )
        fields.update(overrides)
        return RunOutcome(**fields)

    def test_resumed_outcomes_aggregate(self):
        report = BatchReport(outcomes=(self.outcome(),))
        assert report.checkpoints_resumed == 1
        assert report.cycles_saved == 1234.0
        assert report.counts()["resumed"] == 1
        assert "1 resumed from checkpoints (1234 cycles saved)" in (
            report.summary()
        )

    def test_cold_outcomes_stay_silent(self):
        cold = self.outcome(resumed_from_kernel=None, cycles_saved=0.0)
        report = BatchReport(outcomes=(cold,))
        assert report.counts()["resumed"] == 0
        assert "resumed" not in report.summary()

    def test_store_records_resumes(self):
        store = ResultStore(None)
        store.record_resume(10.0)
        store.record_resume(5.5)
        stats = store.stats()
        assert stats["checkpoints_resumed"] == 2
        assert stats["cycles_saved"] == 15.5


class TestDefaultPolicy:
    def test_memory_only_cache_disables_checkpointing(self):
        assert default_checkpoint_policy(None) is None
        assert CachedRunner(None, checkpoint=None).checkpoint is None

    def test_policy_lives_beside_the_cache(self, tmp_path):
        cache = str(tmp_path / "results" / "simcache")
        policy = default_checkpoint_policy(cache)
        assert policy.root == str(tmp_path / "results" / "checkpoints")
        assert policy.enabled

    def test_explicit_root_overrides_memory_only(self, tmp_path):
        policy = default_checkpoint_policy(None, root=str(tmp_path / "ck"))
        assert policy is not None and policy.enabled


class TestEndToEndResume:
    @pytest.fixture(scope="class")
    def baseline(self):
        runner = CachedRunner(None, checkpoint=None)
        return deterministic(runner.simulate(SPEC, SIZE, work_scale=WORK_SCALE))

    def test_lazy_path_resumes_after_injected_death(
        self, tmp_path, monkeypatch, baseline
    ):
        monkeypatch.setenv(FAULT_INJECT_ENV, KILL_PLAN)
        runner = CachedRunner(
            None,
            checkpoint=CheckpointPolicy(root=str(tmp_path / "checkpoints")),
        )
        # First attempt dies right after the boundary-1 snapshot.
        with pytest.raises(InjectedFaultError):
            runner.simulate(SPEC, SIZE, work_scale=WORK_SCALE)
        # The caller's retry resumes from it and completes bit-identically.
        result = runner.simulate(SPEC, SIZE, work_scale=WORK_SCALE)
        assert deterministic(result) == baseline
        stats = runner.stats()
        assert stats["checkpoints_resumed"] == 1
        assert stats["cycles_saved"] > 0
        assert "1 resumed from checkpoints" in runner.execution_health()

    def test_serial_batch_retry_resumes(self, tmp_path, monkeypatch, baseline):
        monkeypatch.setenv(FAULT_INJECT_ENV, KILL_PLAN)
        store = ResultStore(None)
        runner = ParallelRunner(
            store,
            jobs=1,
            policy=ExecutionPolicy(max_retries=2, backoff_base=0.001),
            checkpoint=CheckpointPolicy(root=str(tmp_path / "checkpoints")),
        )
        request = RunRequest("sim", SPEC, size=SIZE, work_scale=WORK_SCALE)
        report = runner.run_batch_report([request])
        (outcome,) = report.outcomes
        assert outcome.ok
        assert outcome.attempts == 2  # died once, resumed on the retry
        assert outcome.resumed_from_kernel == 1
        assert outcome.cycles_saved > 0
        assert report.counts()["resumed"] == 1
        assert "resumed from checkpoints" in report.summary()
        assert store.stats()["checkpoints_resumed"] == 1
        assert deterministic_from_store(store, request.key) == baseline


def deterministic_from_store(store: ResultStore, key: str) -> dict:
    payload = dict(store.get(key))
    payload.pop("wall_time_s")
    return payload

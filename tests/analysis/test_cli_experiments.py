"""Experiment-CLI argument handling tests (no heavy simulation)."""

import io
import os

import pytest

from repro.analysis.cli import build_parser, run_experiment
from repro.analysis.runner import CachedRunner


class TestParser:
    def test_known_experiments(self):
        parser = build_parser()
        for name in ("table1", "fig4", "all"):
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = build_parser().parse_args(["fig4"])
        assert args.target == 128
        assert args.cache == os.path.join("results", "simcache")
        assert args.jobs is None


class TestStaticExperiments:
    def test_table1_runs_without_simulation(self):
        args = build_parser().parse_args(["table1"])
        out = io.StringIO()
        run_experiment("table1", args, CachedRunner(None), out)
        assert "34 MB, 32 slices" in out.getvalue()

    def test_table5_runs_without_simulation(self):
        args = build_parser().parse_args(["table5"])
        out = io.StringIO()
        run_experiment("table5", args, CachedRunner(None), out)
        assert "Table V" in out.getvalue()


class TestExperimentDispatchWithFakeRunner:
    """Exercise every CLI experiment path against the fake runner."""

    def _run(self, name, extra=()):
        from tests.analysis.test_experiments_with_fakes import FakeRunner

        args = build_parser().parse_args([name, *extra])
        out = io.StringIO()
        run_experiment(name, args, FakeRunner(), out)
        return out.getvalue()

    def test_fig1(self):
        text = self._run("fig1", ("--benchmarks", "pf"))
        assert "pf" in text and "performance vs system size" in text

    def test_fig2(self):
        text = self._run("fig2", ("--benchmarks", "pf"))
        assert "miss rate curves" in text

    def test_fig4(self):
        text = self._run("fig4", ("--benchmarks", "pf,ht"))
        assert "128-SM target" in text

    def test_fig5(self):
        text = self._run("fig5", ("--benchmarks", "pf"))
        assert "Figure 5: pf" in text

    def test_fig6(self):
        text = self._run("fig6")
        assert "weak scaling, 128-SM target" in text

    def test_fig7(self):
        text = self._run("fig7")
        assert "simulation speedup" in text

    def test_fig8(self):
        text = self._run("fig8")
        assert "16-SM target" in text

"""Scaling-behaviour classifier tests."""

import pytest

from repro.analysis.classify import classify_scaling
from repro.exceptions import PredictionError
from repro.workloads.spec import ScalingBehavior

SIZES = [8, 16, 32, 64, 128]


class TestClassify:
    def test_perfectly_linear(self):
        ipcs = [100 * s / 8 for s in SIZES]
        assert classify_scaling(ipcs, SIZES) is ScalingBehavior.LINEAR

    def test_mildly_sublinear_is_still_linear(self):
        ipcs = [100, 195, 380, 741, 1445]  # ~1.95x per doubling
        assert classify_scaling(ipcs, SIZES) is ScalingBehavior.LINEAR

    def test_cliff_jump_is_super_linear(self):
        ipcs = [100, 195, 380, 740, 2200]  # ~3x at the last doubling
        assert classify_scaling(ipcs, SIZES) is ScalingBehavior.SUPER_LINEAR

    def test_overall_super_linear_growth(self):
        ipcs = [100 * (s / 8) ** 1.1 for s in SIZES]
        # total = 16^1.1 = 21.1 -> norm 1.32 > threshold
        assert classify_scaling(ipcs, SIZES) is ScalingBehavior.SUPER_LINEAR

    def test_decaying_is_sub_linear(self):
        ipcs = [100, 180, 310, 500, 700]  # norm 0.44
        assert classify_scaling(ipcs, SIZES) is ScalingBehavior.SUB_LINEAR

    def test_two_point_profile(self):
        assert classify_scaling([10, 20], [8, 16]) is ScalingBehavior.LINEAR
        assert classify_scaling([10, 12], [8, 16]) is ScalingBehavior.SUB_LINEAR

    def test_non_uniform_size_steps(self):
        # Step from 8 to 64: an 8x step with a 16x IPC jump -> super.
        assert (
            classify_scaling([100, 1600], [8, 64])
            is ScalingBehavior.SUPER_LINEAR
        )

    def test_unsorted_sizes_sort_jointly_with_ipcs(self):
        # Caller order must not change the classification: the profile
        # is sorted by size with IPCs carried along.
        sizes = [32, 8, 128, 16, 64]
        ipcs = [380, 100, 2200, 195, 740]
        assert classify_scaling(ipcs, sizes) is ScalingBehavior.SUPER_LINEAR
        assert (
            classify_scaling([2.0, 1.0], [16, 8])
            is classify_scaling([1.0, 2.0], [8, 16])
        )

    def test_reversed_profile_is_not_misread_as_decay(self):
        # Descending caller order used to flip every doubling ratio.
        ipcs = [100 * s / 8 for s in SIZES]
        assert (
            classify_scaling(list(reversed(ipcs)), list(reversed(SIZES)))
            is ScalingBehavior.LINEAR
        )

    def test_duplicate_sizes_rejected(self):
        with pytest.raises(PredictionError, match="duplicate sizes"):
            classify_scaling([1.0, 2.0, 3.0], [8, 8, 16])

    def test_validation(self):
        with pytest.raises(PredictionError):
            classify_scaling([1.0], [8])
        with pytest.raises(PredictionError):
            classify_scaling([1.0, 0.0], [8, 16])
        with pytest.raises(PredictionError):
            classify_scaling([1.0, 2.0, 3.0], [8, 16])
        with pytest.raises(PredictionError):
            classify_scaling([1.0, 2.0], [0, 16])

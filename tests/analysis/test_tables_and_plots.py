"""Text-table and ASCII-plot rendering tests."""

import pytest

from repro.analysis.ascii_plot import plot_series
from repro.analysis.tables import render_percent, render_table


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 20]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        # Numeric cells right-aligned, text left-aligned.
        assert lines[3].startswith("alpha")
        assert lines[3].rstrip().endswith("1.50")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_percent_and_x_cells_right_aligned(self):
        text = render_table(["m", "e"], [["x", "12.3%"], ["y", "1.5x"]])
        lines = text.splitlines()
        assert lines[2].rstrip().endswith("12.3%")

    def test_render_percent(self):
        assert render_percent(0.042) == "4.2%"
        assert render_percent(1.13) == "113.0%"


class TestPlotSeries:
    def test_contains_legend_and_bounds(self):
        text = plot_series(
            [8, 16, 32], {"real": [1, 2, 4], "pred": [1, 2, 3]},
            title="plot", x_label="#SMs",
        )
        assert "plot" in text
        assert "* real" in text and "o pred" in text
        assert "#SMs" in text

    def test_marks_present(self):
        text = plot_series([0, 1], {"a": [0.0, 1.0]}, width=16, height=4)
        # One mark in the legend plus one per data point.
        assert text.count("*") == 3

    def test_flat_series_ok(self):
        text = plot_series([1, 2], {"a": [5.0, 5.0]})
        assert "a" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            plot_series([1, 2], {})
        with pytest.raises(ValueError):
            plot_series([1, 2], {"a": [1.0]})

"""Per-config circuit breaker, end to end: a config with a streak of
terminal failures on record is skipped by later ``keep_going``
invocations, ``--retry-quarantined`` forces it through, and a success
closes the streak with an ``ok`` manifest record — on both the batch
(pool) path and the lazy serial path."""

import json

import pytest

from repro.analysis.faults import OK, SKIPPED, ExecutionPolicy
from repro.analysis.parallel import ParallelRunner, RunRequest
from repro.analysis.runner import CachedRunner
from repro.analysis.simcache import ResultStore
from repro.exceptions import ExecutionError, ReproError
from repro.resilience import CircuitBreaker
from repro.workloads import get_benchmark

VA = get_benchmark("va", weak=True)
BP = get_benchmark("bp", weak=True)
FAST = dict(backoff_base=0.001)


def policy(**overrides):
    base = dict(
        max_retries=0, keep_going=True, breaker_threshold=2, **FAST
    )
    base.update(overrides)
    return ExecutionPolicy(**base)


def manifest_records(tmp_path, shard="va"):
    path = tmp_path / "failures" / f"{shard}.jsonl"
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestBatchBreaker:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_trip_skip_retry_and_reset(self, tmp_path, monkeypatch, jobs):
        request = RunRequest("sim", VA, size=8)
        # Two failing invocations build the streak (threshold 2).
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        for _ in range(2):
            store = ResultStore(str(tmp_path / "simcache"))
            ParallelRunner(store, jobs=jobs, policy=policy()).run_batch_report(
                [request, RunRequest("sim", BP, size=8)]
            )
        assert len(manifest_records(tmp_path)) == 2
        # Third invocation: breaker open, the config is skipped with
        # zero attempts and no new manifest record.
        store = ResultStore(str(tmp_path / "simcache"))
        with pytest.warns(UserWarning, match="circuit breaker"):
            report = ParallelRunner(
                store, jobs=jobs, policy=policy()
            ).run_batch_report([request])
        (outcome,) = report.outcomes
        assert outcome.status == SKIPPED and outcome.attempts == 0
        assert "circuit breaker open" in outcome.error
        assert "--retry-quarantined" in outcome.error
        assert "skipped" in report.summary()
        assert not store.contains(request.key)
        assert len(manifest_records(tmp_path)) == 2
        # --retry-quarantined with the fault gone: the run executes and
        # its success appends the ``ok`` record that closes the streak.
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        store = ResultStore(str(tmp_path / "simcache"))
        report = ParallelRunner(
            store, jobs=jobs, policy=policy(retry_quarantined=True)
        ).run_batch_report([request])
        (outcome,) = report.outcomes
        assert outcome.status == OK
        assert store.contains(request.key)
        closing = manifest_records(tmp_path)[-1]
        assert closing["status"] == OK and closing["key"] == request.key
        breaker = CircuitBreaker(str(tmp_path / "failures"), threshold=2)
        assert not breaker.tripped(request.key)

    def test_fail_fast_batches_never_skip(self, tmp_path, monkeypatch):
        # Without keep_going the operator asked for the error itself.
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        request = RunRequest("sim", VA, size=8)
        for _ in range(3):
            store = ResultStore(str(tmp_path / "simcache"))
            runner = ParallelRunner(
                store, jobs=1, policy=policy(keep_going=False)
            )
            with pytest.raises(ExecutionError, match="failed"):
                runner.run_batch_report([request])
        # Streak is far past the threshold, yet the run still executes.
        assert len(manifest_records(tmp_path)) == 3

    def test_threshold_zero_disables_skipping(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        request = RunRequest("sim", VA, size=8)
        for _ in range(3):
            store = ResultStore(str(tmp_path / "simcache"))
            report = ParallelRunner(
                store, jobs=1, policy=policy(breaker_threshold=0)
            ).run_batch_report([request])
            (outcome,) = report.outcomes
            assert outcome.status != SKIPPED


class TestLazyBreaker:
    def test_simulate_gates_records_and_resets(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        root = str(tmp_path / "simcache")
        # The serial lazy path feeds the same manifest as the pool path.
        for _ in range(2):
            runner = CachedRunner(root, policy=policy())
            with pytest.raises(ReproError, match="injected failure"):
                runner.simulate(VA, 8)
        records = manifest_records(tmp_path)
        assert [r["status"] for r in records] == ["failed", "failed"]
        assert "InjectedFaultError" in records[0]["error"]
        # Streak at threshold: the gate raises before computing.
        runner = CachedRunner(root, policy=policy())
        with pytest.raises(ExecutionError, match="circuit breaker open"):
            runner.simulate(VA, 8)
        # --retry-quarantined forces through; success closes the streak.
        monkeypatch.delenv("REPRO_FAULT_INJECT")
        runner = CachedRunner(root, policy=policy(retry_quarantined=True))
        result = runner.simulate(VA, 8)
        assert result.cycles > 0
        assert [r["status"] for r in manifest_records(tmp_path)] == [
            "failed", "failed", "ok",
        ]
        # With a clean streak a plain keep-going runner serves the cache.
        runner = CachedRunner(root, policy=policy())
        assert runner.simulate(VA, 8).cycles == result.cycles

    def test_memory_error_records_oom(self, tmp_path, monkeypatch):
        root = str(tmp_path / "simcache")
        runner = CachedRunner(root, policy=policy())
        monkeypatch.setattr(
            "repro.analysis.runner.compute_mrc",
            lambda *a, **k: (_ for _ in ()).throw(MemoryError("rss cap")),
        )
        with pytest.raises(MemoryError):
            runner.miss_rate_curve(VA)
        (record,) = manifest_records(tmp_path)
        assert record["status"] == "oom"
        assert record["kind"] == "mrc"

    def test_execution_health_mentions_skips(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        root = str(tmp_path / "simcache")
        request = RunRequest("sim", VA, size=8)
        for _ in range(2):
            CachedRunner(root, jobs=2, policy=policy()).prefetch([request])
        runner = CachedRunner(root, jobs=2, policy=policy())
        with pytest.warns(UserWarning, match="circuit breaker"):
            runner.prefetch([request])
        assert runner.stats()["exec_skipped"] == 1
        assert "1 skipped (circuit breaker)" in runner.execution_health()


class TestBreakerConcurrency:
    """Racing recorders must not double-trip a config or lose the
    closing ``ok`` record, and concurrent manifest appends must never
    tear a line."""

    def _outcome(self, status, key="cfg-key", attempts=1):
        from repro.analysis.faults import RunOutcome

        return RunOutcome(
            key=key, kind="sim", shard="va", status=status,
            attempts=attempts,
        )

    def test_racing_failures_trip_exactly_once(self, tmp_path):
        import threading

        from repro.service.admission import ServiceBreaker

        breaker = ServiceBreaker(str(tmp_path / "failures"), threshold=3)
        barrier = threading.Barrier(8)

        def hammer():
            barrier.wait()
            for _ in range(25):
                breaker.record_failure(self._outcome("failed"))

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # 200 racing failures: every one counted, the trip counted once.
        assert breaker.streak("cfg-key") == 200
        assert breaker.trips == 1
        assert breaker.open_for("cfg-key")
        records = manifest_records(tmp_path)
        assert len(records) == 200
        assert all(r["status"] == "failed" for r in records)

    def test_closing_ok_survives_racing_failures_on_other_keys(
        self, tmp_path
    ):
        import threading

        from repro.service.admission import ServiceBreaker

        breaker = ServiceBreaker(str(tmp_path / "failures"), threshold=2)
        for _ in range(2):
            breaker.record_failure(self._outcome("failed", key="sick"))
        assert breaker.open_for("sick")

        barrier = threading.Barrier(5)

        def fail_other(index):
            barrier.wait()
            for _ in range(20):
                breaker.record_failure(
                    self._outcome("failed", key=f"other-{index}")
                )

        def recover():
            barrier.wait()
            breaker.record_success(self._outcome("ok", key="sick"))

        threads = [
            threading.Thread(target=fail_other, args=(index,))
            for index in range(4)
        ] + [threading.Thread(target=recover)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # The recovery closed the streak despite the surrounding storm...
        assert not breaker.open_for("sick")
        assert breaker.streak("sick") == 0
        records = manifest_records(tmp_path)
        ok_records = [r for r in records if r["status"] == "ok"]
        assert [r["key"] for r in ok_records] == ["sick"]
        # ...and no concurrent append tore a line (manifest_records
        # would have raised on malformed JSON).
        assert len(records) == 2 + 80 + 1
        # A fresh load-time breaker reads the same verdicts back.
        reloaded = CircuitBreaker(str(tmp_path / "failures"), threshold=2)
        assert not reloaded.tripped("sick")
        assert reloaded.tripped("other-0")

    def test_racing_batches_share_one_manifest_cleanly(
        self, tmp_path, monkeypatch
    ):
        import threading

        monkeypatch.setenv("REPRO_FAULT_INJECT", "fail:sim|va")
        request = RunRequest("sim", VA, size=8)
        failures = []

        def run_batch():
            store = ResultStore(str(tmp_path / "simcache"))
            try:
                ParallelRunner(
                    store, jobs=1, policy=policy(breaker_threshold=0)
                ).run_batch_report([request])
            except Exception as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        threads = [threading.Thread(target=run_batch) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        records = manifest_records(tmp_path)
        assert len(records) == 3
        assert all(r["status"] == "failed" for r in records)
        assert all(r["key"] == request.key for r in records)
        breaker = CircuitBreaker(str(tmp_path / "failures"), threshold=2)
        assert breaker.consecutive_failures(request.key) == 3


class TestCliFlag:
    def test_retry_quarantined_maps_to_policy(self):
        from repro.analysis.cli import build_parser, build_policy

        args = build_parser().parse_args(["fig4", "--retry-quarantined"])
        assert build_policy(args).retry_quarantined is True
        args = build_parser().parse_args(["fig4"])
        assert build_policy(args).retry_quarantined is False

"""Cached-runner tests: memoization, invalidation, persistence.

The deeper cache-subsystem tests (corruption quarantine, legacy
migration, parallel execution) live in ``tests/test_runner_cache.py``;
these cover the runner's user-facing memoization contract.
"""

import json
import os

from dataclasses import replace

import pytest

from repro.analysis.runner import CachedRunner
from repro.workloads import get_benchmark


@pytest.fixture
def cache_path(tmp_path):
    return str(tmp_path / "cache")


@pytest.fixture
def tiny_spec():
    # The smallest weak-scaling input is the cheapest real benchmark run.
    return get_benchmark("va", weak=True)


class TestCachedRunner:
    def test_simulation_cached_and_identical(self, cache_path, tiny_spec):
        runner = CachedRunner(cache_path)
        first = runner.simulate(tiny_spec, 8)
        assert runner.misses == 1
        second = runner.simulate(tiny_spec, 8)
        assert runner.hits == 1
        assert first.ipc == second.ipc
        assert first.cycles == second.cycles

    def test_cache_survives_restart(self, cache_path, tiny_spec):
        CachedRunner(cache_path).simulate(tiny_spec, 8)
        runner2 = CachedRunner(cache_path)
        runner2.simulate(tiny_spec, 8)
        assert runner2.hits == 1
        assert runner2.misses == 0

    def test_param_change_invalidates(self, cache_path, tiny_spec):
        runner = CachedRunner(cache_path)
        runner.simulate(tiny_spec, 8)
        changed = replace(
            tiny_spec, params={**dict(tiny_spec.params), "cpa": 99.0}
        )
        runner.simulate(changed, 8)
        assert runner.misses == 2

    def test_work_share_change_invalidates(self, cache_path, tiny_spec):
        runner = CachedRunner(cache_path)
        runner.simulate(tiny_spec, 8)
        changed = replace(
            tiny_spec,
            kernels=tuple(
                replace(k, work_share=0.25) for k in tiny_spec.kernels
            ),
        )
        runner.simulate(changed, 8)
        assert runner.misses == 2

    def test_work_scale_in_key(self, cache_path, tiny_spec):
        runner = CachedRunner(cache_path)
        runner.simulate(tiny_spec, 8, work_scale=1.0)
        runner.simulate(tiny_spec, 8, work_scale=2.0)
        assert runner.misses == 2

    def test_mrc_cached(self, cache_path, tiny_spec):
        runner = CachedRunner(cache_path)
        first = runner.miss_rate_curve(tiny_spec)
        second = runner.miss_rate_curve(tiny_spec)
        assert runner.hits == 1
        assert first.mpki == second.mpki
        assert first.capacities_bytes == second.capacities_bytes

    def test_cache_shard_is_jsonl(self, cache_path, tiny_spec):
        CachedRunner(cache_path).simulate(tiny_spec, 8)
        shard = os.path.join(cache_path, "va.jsonl")
        assert os.path.exists(shard)
        with open(shard) as fh:
            records = [json.loads(line) for line in fh if line.strip()]
        assert len(records) == 1
        assert set(records[0]) == {"key", "payload", "digest"}
        from repro.verify.digest import content_digest

        assert records[0]["digest"] == content_digest(records[0]["payload"])

    def test_no_cache_path_means_memory_only(self, tiny_spec):
        runner = CachedRunner(None)
        runner.simulate(tiny_spec, 8)
        runner.simulate(tiny_spec, 8)
        assert runner.hits == 1  # still memoized in memory

    def test_clear(self, cache_path, tiny_spec):
        runner = CachedRunner(cache_path)
        runner.simulate(tiny_spec, 8)
        runner.clear()
        runner.simulate(tiny_spec, 8)
        assert runner.misses == 2
        assert len(CachedRunner(cache_path).store) == 1

    def test_stats_exposed(self, cache_path, tiny_spec):
        runner = CachedRunner(cache_path)
        runner.simulate(tiny_spec, 8)
        runner.simulate(tiny_spec, 8)
        stats = runner.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["flushes"] == 1

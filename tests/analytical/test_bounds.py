"""Analytical bound-model tests, including cross-checks vs the simulator."""

import pytest

from repro.analytical import WorkloadStats, analyze, stats_from_result
from repro.exceptions import PredictionError
from repro.gpu import GPUConfig, simulate
from repro.workloads import STRONG_SCALING, build_trace


class TestWorkloadStats:
    def test_validation(self):
        with pytest.raises(PredictionError):
            WorkloadStats(0.0, 0.5, 0.5)
        with pytest.raises(PredictionError):
            WorkloadStats(10.0, 1.5, 0.5)
        with pytest.raises(PredictionError):
            WorkloadStats(10.0, 0.5, -0.1)


class TestBounds:
    def config(self, num_sms=16):
        return GPUConfig.paper_system(num_sms)

    def test_compute_bound_workload(self):
        # Very high instructions/access, everything hits the L1.
        stats = WorkloadStats(3000.0, 0.02, 0.1)
        est = analyze(self.config(), stats)
        assert est.bottleneck == "issue"
        cfg = self.config()
        assert est.ipc == cfg.num_sms * cfg.issue_width * 32

    def test_dram_bound_workload(self):
        # Memory hungry, everything misses everywhere.
        stats = WorkloadStats(80.0, 1.0, 1.0)
        est = analyze(self.config(), stats)
        assert est.bottleneck in ("dram", "latency")
        assert est.ipc < 0.5 * self.config().num_sms * 64

    def test_llc_hits_relieve_dram(self):
        thrash = analyze(self.config(), WorkloadStats(100.0, 1.0, 1.0))
        fits = analyze(self.config(), WorkloadStats(100.0, 1.0, 0.05))
        assert fits.ipc > thrash.ipc

    def test_bounds_scale_with_system_size(self):
        stats = WorkloadStats(200.0, 0.5, 0.3)
        small = analyze(self.config(8), stats)
        large = analyze(self.config(64), stats)
        assert large.ipc > 4 * small.ipc  # proportional resources

    def test_as_text(self):
        est = analyze(self.config(), WorkloadStats(100.0, 0.5, 0.5))
        text = est.as_text()
        assert "binding" in text and "predicted IPC" in text


class TestCrossCheckAgainstSimulator:
    """The analytical model should land within ~2x of the simulator and
    agree on the bottleneck class; it is a sanity check, not a replacement.
    """

    @pytest.mark.parametrize("abbr,expected_kind", [
        ("gemm", "issue"),      # compute-bound linear workload
        ("pf", ("dram", "latency")),  # memory-bound linear workload
    ])
    def test_bottleneck_and_magnitude(self, abbr, expected_kind):
        cfg = GPUConfig.paper_system(16)
        result = simulate(
            cfg, build_trace(STRONG_SCALING[abbr],
                             capacity_scale=cfg.capacity_scale)
        )
        est = analyze(cfg, stats_from_result(result))
        if isinstance(expected_kind, str):
            assert est.bottleneck == expected_kind
        else:
            assert est.bottleneck in expected_kind
        assert est.ipc / result.ipc < 3.0
        assert result.ipc / est.ipc < 3.0

    def test_stats_from_result_requires_accesses(self):
        from repro.gpu.results import SimulationResult

        empty = SimulationResult(
            workload="w", system="s", num_sms=1, cycles=1.0,
            thread_instructions=10, warp_instructions=1,
            memory_accesses=0, memory_stall_fraction=0.0,
        )
        with pytest.raises(PredictionError):
            stats_from_result(empty)

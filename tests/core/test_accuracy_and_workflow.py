"""Accuracy metrics and end-to-end workflow tests (with fake simulators)."""

import pytest

from repro.core.accuracy import geometric_mean, prediction_error, summarize_errors
from repro.core.workflow import predict_strong_scaling, predict_weak_scaling
from repro.exceptions import PredictionError
from repro.gpu.results import SimulationResult
from repro.mrc.curve import MissRateCurve
from repro.units import MB
from repro.workloads import get_benchmark

PER_SM = 34 * MB / 128


class TestAccuracy:
    def test_prediction_error(self):
        assert prediction_error(110, 100) == pytest.approx(0.10)
        assert prediction_error(90, 100) == pytest.approx(0.10)
        with pytest.raises(PredictionError):
            prediction_error(1.0, 0.0)

    def test_summarize(self):
        errors = {
            "m1": {"a": 0.1, "b": 0.3},
            "m2": {"a": 0.05, "b": 0.05},
        }
        rows = {s.method: s for s in summarize_errors(errors)}
        assert rows["m1"].mean == pytest.approx(0.2)
        assert rows["m1"].maximum == pytest.approx(0.3)
        assert rows["m1"].worst_benchmark == "b"
        assert rows["m2"].count == 2
        assert rows["m1"].as_row()[1] == "20.0%"

    def test_summarize_empty_rejected(self):
        with pytest.raises(PredictionError):
            summarize_errors({"m": {}})

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        with pytest.raises(PredictionError):
            geometric_mean([])
        with pytest.raises(PredictionError):
            geometric_mean([1.0, 0.0])


def fake_result(num_sms, ipc, f_mem=0.3, workload="fake"):
    return SimulationResult(
        workload=workload, system=f"{num_sms}sm", num_sms=num_sms,
        cycles=1000.0, thread_instructions=int(ipc * 1000),
        warp_instructions=int(ipc * 1000) // 32, memory_accesses=10,
        memory_stall_fraction=f_mem,
    )


def linear_sim(per_sm_ipc=30.0):
    def run(num_sms, work_scale):
        return fake_result(num_sms, per_sm_ipc * num_sms)
    return run


def flat_curve():
    caps = tuple(int(PER_SM * 8 * 2**i) for i in range(5))
    return MissRateCurve("fake", caps, (3.0,) * 5)


class TestStrongWorkflow:
    def test_linear_workload_all_methods_close(self):
        spec = get_benchmark("pf")
        study = predict_strong_scaling(
            spec, simulate_fn=linear_sim(), mrc_fn=flat_curve,
        )
        assert study.scenario == "strong"
        for method in ("scale-model", "proportional", "linear", "power-law"):
            errs = study.errors(method)
            assert max(errs.values()) < 0.01, method
        # Logarithmic regression fails badly on linear scaling.
        assert study.errors("logarithmic")[128] > 0.5

    def test_cliff_workload_uses_eq3(self):
        def cliffy(num_sms, work_scale):
            ipc = {8: 100, 16: 200, 32: 400, 64: 800, 128: 3200}[num_sms]
            return fake_result(num_sms, ipc, f_mem=0.5)

        caps = tuple(int(PER_SM * 8 * 2**i) for i in range(5))
        curve = MissRateCurve("c", caps, (2.0, 2.0, 2.0, 2.0, 0.1))
        spec = get_benchmark("dct")
        study = predict_strong_scaling(spec, simulate_fn=cliffy, mrc_fn=lambda: curve)
        # Eq. 3 at 128: 200 * 8 / (1 - 0.5) = 3200 -> exact here.
        assert study.predictions["scale-model"][128] == pytest.approx(3200)
        assert study.errors("scale-model")[128] < 0.01
        # Baselines cannot see the cliff.
        assert study.errors("proportional")[128] > 0.4

    def test_scale_targets_must_be_larger(self):
        spec = get_benchmark("pf")
        with pytest.raises(PredictionError):
            predict_strong_scaling(
                spec, scale_sizes=(8, 64), target_sizes=(32,),
                simulate_fn=linear_sim(), mrc_fn=flat_curve,
            )

    def test_without_actuals(self):
        spec = get_benchmark("pf")
        study = predict_strong_scaling(
            spec, simulate_fn=linear_sim(), mrc_fn=flat_curve,
            include_actuals=False,
        )
        assert study.actuals == {}
        with pytest.raises(PredictionError):
            study.errors("scale-model")

    def test_unknown_method_errors(self):
        spec = get_benchmark("pf")
        study = predict_strong_scaling(
            spec, simulate_fn=linear_sim(), mrc_fn=flat_curve,
        )
        with pytest.raises(PredictionError):
            study.errors("nope")


class TestWeakWorkflow:
    def test_weak_uses_work_scale(self):
        calls = []

        def spy(num_sms, work_scale):
            calls.append((num_sms, work_scale))
            return fake_result(num_sms, 30.0 * num_sms)

        spec = get_benchmark("va", weak=True)
        study = predict_weak_scaling(spec, simulate_fn=spy)
        assert (8, 1.0) in calls and (16, 2.0) in calls
        assert (128, 16.0) in calls
        assert study.scenario == "weak"
        assert study.profile.curve is None  # no MRC under weak scaling

    def test_weak_requires_scalable_benchmark(self):
        spec = get_benchmark("dct")  # not weak-scalable
        with pytest.raises(PredictionError):
            predict_weak_scaling(spec, simulate_fn=linear_sim())

    def test_weak_linear_accuracy(self):
        spec = get_benchmark("bp", weak=True)
        study = predict_weak_scaling(spec, simulate_fn=linear_sim())
        assert max(study.errors("scale-model").values()) < 0.01

"""Baseline predictor tests (proportional, linear, power-law, logarithmic)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.baselines import (
    METHOD_NAMES,
    LinearRegression,
    LogarithmicRegression,
    PowerLawRegression,
    ProportionalScaling,
    make_predictor,
)
from repro.exceptions import PredictionError

SIZES = [8, 16]


class TestProportional:
    def test_scales_from_largest_model(self):
        p = ProportionalScaling().fit(SIZES, [100, 190])
        assert p.predict(128) == pytest.approx(190 * 8)
        assert p.predict(16) == pytest.approx(190)

    def test_single_point_suffices(self):
        p = ProportionalScaling().fit([16], [190])
        assert p.predict(32) == pytest.approx(380)


class TestLinear:
    def test_two_point_fit_is_exact_interpolation(self):
        p = LinearRegression().fit(SIZES, [100, 190])
        assert p.predict(8) == pytest.approx(100)
        assert p.predict(16) == pytest.approx(190)
        assert p.predict(128) == pytest.approx(100 + (90 / 8) * 120)

    def test_least_squares_three_points(self):
        p = LinearRegression().fit([1, 2, 3], [2, 4, 6])
        assert p.predict(10) == pytest.approx(20, rel=1e-6)


class TestPowerLaw:
    def test_exact_on_power_data(self):
        data = [(8, 3 * 8**0.8), (16, 3 * 16**0.8)]
        p = PowerLawRegression().fit([x for x, __ in data], [y for __, y in data])
        assert p.predict(128) == pytest.approx(3 * 128**0.8, rel=1e-9)

    def test_linear_data_gives_exponent_one(self):
        p = PowerLawRegression().fit(SIZES, [80, 160])
        assert p.predict(128) == pytest.approx(1280, rel=1e-9)


class TestLogarithmic:
    def test_paper_form_a_log2(self):
        # y = a*log2(x): fit on a single consistent dataset.
        p = LogarithmicRegression().fit([8, 16], [30, 40])
        # least squares a = (3*30 + 4*40)/(9+16) = 10
        assert p.predict(128) == pytest.approx(70)

    def test_badly_underpredicts_linear_scaling(self):
        """The motivation for the paper: log regression cannot track GPU
        scaling (it was designed for CPU multi-program workloads)."""
        p = LogarithmicRegression().fit(SIZES, [100, 200])
        assert p.predict(128) < 0.4 * 1600


class TestRegistryAndValidation:
    def test_method_names(self):
        assert set(METHOD_NAMES) == {
            "logarithmic", "proportional", "linear", "power-law", "scale-model",
        }

    def test_make_predictor(self):
        for name in METHOD_NAMES:
            if name == "scale-model":
                with pytest.raises(PredictionError):
                    make_predictor(name)
            else:
                assert make_predictor(name).name == name

    def test_predict_before_fit(self):
        with pytest.raises(PredictionError):
            LinearRegression().predict(10)

    def test_fit_validation(self):
        with pytest.raises(PredictionError):
            LinearRegression().fit([8], [100])  # too few
        with pytest.raises(PredictionError):
            LinearRegression().fit([8, 16], [100])  # mismatched
        with pytest.raises(PredictionError):
            PowerLawRegression().fit([8, 16], [0.0, 1.0])  # non-positive
        p = LinearRegression().fit(SIZES, [1.0, 2.0])
        with pytest.raises(PredictionError):
            p.predict(0)

    @given(
        ipc8=st.floats(min_value=1, max_value=1e4),
        ratio=st.floats(min_value=1.05, max_value=2.5),
    )
    def test_all_methods_positive_on_growing_profiles(self, ipc8, ratio):
        ipcs = [ipc8, ipc8 * ratio]
        for name in METHOD_NAMES:
            if name == "scale-model":
                continue
            value = make_predictor(name).fit(SIZES, ipcs).predict(128)
            assert value > 0
            assert math.isfinite(value)

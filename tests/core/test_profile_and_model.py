"""Scale-model predictor tests: Equations 1-4 on constructed inputs."""

import pytest

from repro.core.model import ScaleModelPredictor
from repro.core.profile import ScaleModelProfile
from repro.exceptions import PredictionError
from repro.mrc.cliff import Region
from repro.mrc.curve import MissRateCurve
from repro.units import MB

#: Paper LLC per SM: 34 MB / 128 SMs.
PER_SM = 34 * MB / 128


def paper_curve(mpki):
    caps = tuple(int(PER_SM * 8 * 2**i) for i in range(len(mpki)))
    return MissRateCurve("t", caps, tuple(mpki))


def profile(ipc8=100.0, ipc16=190.0, f_mem=0.4, mpki=None):
    curve = paper_curve(mpki) if mpki is not None else None
    return ScaleModelProfile(
        workload="t", sizes=(8, 16), ipcs=(ipc8, ipc16),
        f_mem=f_mem, curve=curve,
    )


class TestProfile:
    def test_correction_factor_eq1(self):
        # (190/100) / (16/8) = 0.95
        assert profile().correction_factor() == pytest.approx(0.95)

    def test_super_linear_correction_above_one(self):
        p = profile(ipc8=100, ipc16=220)
        assert p.correction_factor() == pytest.approx(1.1)

    def test_validation(self):
        with pytest.raises(PredictionError):
            ScaleModelProfile("t", (8,), (100.0,))
        with pytest.raises(PredictionError):
            ScaleModelProfile("t", (16, 8), (100.0, 190.0))
        with pytest.raises(PredictionError):
            ScaleModelProfile("t", (8, 16), (100.0, -5.0))
        with pytest.raises(PredictionError):
            ScaleModelProfile("t", (8, 16), (100.0, 190.0), f_mem=1.0)

    def test_accessors(self):
        p = profile()
        assert p.smallest == (8, 100.0)
        assert p.largest == (16, 190.0)


class TestPreCliff:
    def test_eq2_no_curve(self):
        predictor = ScaleModelPredictor(profile())
        result = predictor.predict(128)
        # IPC_L * (T/L) * C = 190 * 8 * 0.95
        assert result.ipc == pytest.approx(190 * 8 * 0.95)
        assert result.region is Region.PRE_CLIFF
        assert result.correction_factor == pytest.approx(0.95)

    def test_eq2_flat_curve(self):
        predictor = ScaleModelPredictor(profile(mpki=[5, 5, 5, 5, 5]))
        result = predictor.predict(64)
        assert result.ipc == pytest.approx(190 * 4 * 0.95)
        assert result.region is Region.PRE_CLIFF

    def test_target_smaller_than_largest_model_rejected(self):
        with pytest.raises(PredictionError):
            ScaleModelPredictor(profile()).predict(8)

    def test_predict_many_sorted(self):
        results = ScaleModelPredictor(profile()).predict_many([128, 32, 64])
        assert [r.target_size for r in results] == [32, 64, 128]


class TestCliff:
    def test_eq3_uses_f_mem(self):
        # Cliff between 17 MB (64 SMs) and 34 MB (128 SMs).
        predictor = ScaleModelPredictor(
            profile(f_mem=0.4, mpki=[2.1, 2.1, 2.1, 2.1, 0.2])
        )
        result = predictor.predict(128)
        assert result.region is Region.CLIFF
        assert result.ipc == pytest.approx(190 * 8 / (1 - 0.4))

    def test_pre_cliff_targets_still_eq2(self):
        predictor = ScaleModelPredictor(
            profile(f_mem=0.4, mpki=[2.1, 2.1, 2.1, 2.1, 0.2])
        )
        result = predictor.predict(64)
        assert result.region is Region.PRE_CLIFF
        assert result.ipc == pytest.approx(190 * 4 * 0.95)

    def test_missing_f_mem_raises(self):
        prof = ScaleModelProfile(
            "t", (8, 16), (100.0, 190.0), f_mem=None,
            curve=paper_curve([2.1, 2.1, 2.1, 2.1, 0.2]),
        )
        with pytest.raises(PredictionError, match="f_mem"):
            ScaleModelPredictor(prof).predict(128)


class TestPostCliff:
    def test_eq4_chains_from_cliff_prediction(self):
        # Cliff between 8.5 MB (32 SMs) and 17 MB (64 SMs): the 64-SM
        # system is the cliff anchor K; 128 SMs is post-cliff.
        predictor = ScaleModelPredictor(
            profile(f_mem=0.5, mpki=[2.1, 2.1, 2.1, 0.3, 0.3])
        )
        r64 = predictor.predict(64)
        r128 = predictor.predict(128)
        assert r64.region is Region.CLIFF
        assert r128.region is Region.POST_CLIFF
        ipc_k = 190 * 4 / (1 - 0.5)
        assert r64.ipc == pytest.approx(ipc_k)
        # Eq. 4: anchor scaled by T/K and corrected by C.
        assert r128.ipc == pytest.approx(ipc_k * 2 * 0.95)
        assert r128.details["anchor_size"] == 64.0

    def test_capacity_mapping_inferred_from_curve(self):
        predictor = ScaleModelPredictor(
            profile(mpki=[2.1, 2.1, 2.1, 2.1, 0.2])
        )
        assert predictor.capacity_of(128) == pytest.approx(PER_SM * 128, rel=1e-6)


class TestPredictionResult:
    def test_non_positive_rejected(self):
        from repro.core.model import PredictionResult

        with pytest.raises(PredictionError):
            PredictionResult("w", 64, 0.0, Region.PRE_CLIFF, 1.0)

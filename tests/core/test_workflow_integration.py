"""End-to-end workflow integration tests with the real simulator.

These use the cheapest real benchmark (weak-scaling va at small sizes) so
the default ``simulate_fn``/``mrc_fn`` paths are exercised for real.
"""

import pytest

from repro.core import predict_strong_scaling, predict_weak_scaling
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def weak_study():
    return predict_weak_scaling(
        get_benchmark("va", weak=True),
        scale_sizes=(8, 16),
        target_sizes=(32,),
    )


class TestRealWeakWorkflow:
    def test_produces_all_methods(self, weak_study):
        assert set(weak_study.predictions) == {
            "scale-model", "proportional", "linear", "power-law", "logarithmic",
        }

    def test_actuals_recorded(self, weak_study):
        assert 32 in weak_study.actuals
        assert weak_study.actuals[32] > 0

    def test_linear_weak_benchmark_predicted_well(self, weak_study):
        # va is linear under weak scaling; one doubling beyond the largest
        # model should land close for the trend-based methods.
        assert weak_study.errors("scale-model")[32] < 0.15
        assert weak_study.errors("proportional")[32] < 0.20

    def test_profile_shape(self, weak_study):
        assert weak_study.profile.sizes == (8, 16)
        assert weak_study.profile.curve is None
        assert 0.0 <= weak_study.profile.f_mem < 1.0


class TestRealStrongWorkflow:
    def test_default_mrc_and_simulation_paths(self):
        # Use the real default paths end to end on a small target set.
        study = predict_strong_scaling(
            get_benchmark("lu"),
            scale_sizes=(8, 16),
            target_sizes=(32,),
            include_actuals=False,
        )
        assert study.profile.curve is not None
        assert len(study.profile.curve) == 5
        assert study.predictions["scale-model"][32] > 0

"""Artifact-style CLI tests (gpu-scale-model)."""

import io

import pytest

from repro.core.cli import build_parser, main, run


def run_cli(argv):
    parser = build_parser()
    args = parser.parse_args(argv)
    out = io.StringIO()
    code = run(args, out=out)
    return code, out.getvalue()


class TestCli:
    def test_pre_cliff_prediction(self):
        code, text = run_cli(
            ["100", "190", "3", "3", "3", "3", "3", "--small-sms", "8"]
        )
        assert code == 0
        assert "Correction factor C (Eq. 1): 0.950" in text
        assert "No cliff detected" in text
        # Eq. 2 at 128 SMs: 190 * 8 * 0.95 = 1444.
        assert "1444.0" in text

    def test_cliff_prediction_with_f_mem(self):
        code, text = run_cli(
            ["100", "190", "2.1", "2.1", "2.1", "2.1", "0.2",
             "--small-sms", "8", "--f-mem", "0.5"]
        )
        assert code == 0
        assert "Cliff detected between 17.00 MB and 34.00 MB" in text
        # Eq. 3 at 128: 190 * 8 / 0.5 = 3040.
        assert "3040.0" in text
        assert "[cliff]" in text

    def test_reports_all_methods(self):
        __, text = run_cli(
            ["100", "190", "3", "3", "3", "--small-sms", "8"]
        )
        for name in ("logarithmic", "proportional", "linear", "power-law"):
            assert name in text

    def test_plot_flag(self):
        code, text = run_cli(
            ["100", "190", "3", "3", "3", "3", "3", "--small-sms", "8",
             "--plot"]
        )
        assert code == 0
        assert "Predicted IPC vs system size" in text

    def test_too_few_mpki_values(self):
        assert main(["100", "190", "3", "3", "--small-sms", "8"]) == 2

    def test_invalid_small_sms(self):
        assert main(["100", "190", "3", "3", "3", "--small-sms", "0"]) == 2

    def test_chiplet_mode(self):
        """The artifact supports chiplets by passing chiplet counts."""
        code, text = run_cli(
            ["500", "980", "2", "2", "2", "--small-sms", "4",
             "--llc-mb-per-sm", "4.5"]
        )
        assert code == 0
        assert "16" in text  # predicts the 16-chiplet point

"""Predictor input-sensitivity tests."""

import pytest

from repro.core.profile import ScaleModelProfile
from repro.core.sensitivity import (
    region_stability,
    sensitivity_report,
)
from repro.exceptions import PredictionError
from repro.mrc.curve import MissRateCurve
from repro.units import MB

PER_SM = 34 * MB / 128


def curve(mpki):
    caps = tuple(int(PER_SM * 8 * 2**i) for i in range(len(mpki)))
    return MissRateCurve("t", caps, tuple(mpki))


def profile(mpki=None, f_mem=0.5):
    return ScaleModelProfile(
        "t", (8, 16), (100.0, 190.0), f_mem=f_mem,
        curve=curve(mpki) if mpki else None,
    )


class TestSensitivityReport:
    def test_pre_cliff_ipc_large_dominates(self):
        report = sensitivity_report(profile(), 128)
        # IPC_L appears in the anchor and in C: ~(1+e)^2 - 1.
        assert report.sensitivities["ipc_large"][0.05] == pytest.approx(
            1.05**2 - 1, rel=1e-6
        )
        # IPC_S appears only in C, inversely.
        assert report.sensitivities["ipc_small"][0.05] == pytest.approx(
            1 / 1.05 - 1, rel=1e-6
        )

    def test_f_mem_ignored_pre_cliff(self):
        report = sensitivity_report(profile(), 128)
        assert all(v == 0.0 for v in report.sensitivities["f_mem"].values())

    def test_f_mem_amplified_at_cliff(self):
        report = sensitivity_report(
            profile(mpki=[2.0, 2.0, 2.0, 2.0, 0.1]), 128
        )
        # d(1/(1-f))/df amplifies: +10% on f=0.5 -> 1/(1-0.55)/2 = +11.1%.
        assert report.sensitivities["f_mem"][0.10] == pytest.approx(
            (1 - 0.5) / (1 - 0.55) - 1, rel=1e-6
        )
        assert report.worst_case("f_mem") > report.worst_case("ipc_small") / 2

    def test_rows_rendering(self):
        rows = sensitivity_report(profile(), 64).as_rows()
        assert all(len(r) == 3 for r in rows)

    def test_validation(self):
        with pytest.raises(PredictionError):
            sensitivity_report(profile(), 128, perturbations=())


class TestRegionStability:
    def test_flat_curve_always_stable(self):
        stability = region_stability(curve([3.0] * 5))
        assert all(stability.values())

    def test_sharp_cliff_stable_to_small_noise(self):
        stability = region_stability(curve([2.0, 2.0, 2.0, 2.0, 0.1]),
                                     noise_levels=(0.05,))
        assert stability[0.05]

    def test_borderline_cliff_flips_under_noise(self):
        # Drop ratio 2.05: barely a cliff; 10% point noise can erase it.
        stability = region_stability(curve([2.05, 2.05, 2.05, 2.05, 1.0]),
                                     noise_levels=(0.10,))
        assert not stability[0.10]

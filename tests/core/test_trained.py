"""Trained one-size-fits-all model tests."""

import pytest

from repro.core.trained import TrainedScalingModel, leave_one_out_errors
from repro.exceptions import PredictionError


def linear_curve(per_sm=10.0):
    return {n: per_sm * n for n in (8, 16, 32, 64, 128)}


def cliff_curve(per_sm=10.0, boost=3.0):
    curve = linear_curve(per_sm)
    curve[128] *= boost
    return curve


class TestTraining:
    def test_identical_training_curves_learned_exactly(self):
        model = TrainedScalingModel(16).fit([linear_curve(), linear_curve(5)])
        assert model.curve[128] == pytest.approx(8.0)
        assert model.curve[8] == pytest.approx(0.5)

    def test_geometric_mean_of_heterogeneous_curves(self):
        model = TrainedScalingModel(16).fit(
            [linear_curve(), cliff_curve(boost=4.0)]
        )
        # geomean(8, 32) = 16.
        assert model.curve[128] == pytest.approx(16.0)

    def test_prediction_scales_anchor(self):
        model = TrainedScalingModel(16).fit([linear_curve()])
        assert model.predict(200.0, 128) == pytest.approx(1600.0)

    def test_validation(self):
        with pytest.raises(PredictionError):
            TrainedScalingModel(0)
        with pytest.raises(PredictionError):
            TrainedScalingModel(16).fit([])
        with pytest.raises(PredictionError):
            TrainedScalingModel(16).fit([{8: 1.0}])  # anchor missing
        model = TrainedScalingModel(16).fit([linear_curve()])
        with pytest.raises(PredictionError):
            model.predict(100.0, 1000)  # untrained size
        with pytest.raises(PredictionError):
            TrainedScalingModel(16).predict(1.0, 128)  # unfitted


class TestLeaveOneOut:
    def test_homogeneous_training_is_accurate(self):
        curves = {f"b{i}": linear_curve(5 + i) for i in range(4)}
        errors = leave_one_out_errors(curves, anchor_size=16, target_size=128)
        assert max(errors.values()) < 1e-9

    def test_outlier_workload_is_mispredicted(self):
        """The paper's argument: a super-linear workload predicted from a
        linear training set misses its cliff entirely."""
        curves = {f"lin{i}": linear_curve(5 + i) for i in range(5)}
        curves["dct-like"] = cliff_curve(boost=3.0)
        errors = leave_one_out_errors(curves, 16, 128)
        assert errors["dct-like"] > 0.5          # misses the 3x cliff
        # ...and the outlier barely pollutes the others' predictions.
        others = [e for name, e in errors.items() if name != "dct-like"]
        assert max(others) < 0.35

    def test_needs_two_benchmarks(self):
        with pytest.raises(PredictionError):
            leave_one_out_errors({"a": linear_curve()}, 16, 128)


class TestAgainstRealSuite:
    def test_trained_model_loses_to_per_workload_prediction(self):
        """On the real 21-benchmark suite the trained global model must be
        substantially worse than per-workload scale-model prediction —
        the quantitative version of Section II's argument."""
        from repro.analysis.runner import CachedRunner
        from repro.analysis.experiments import figure4_strong_accuracy
        from repro.workloads import STRONG_SCALING

        runner = CachedRunner()
        curves = {}
        for abbr, spec in STRONG_SCALING.items():
            curves[abbr] = {
                n: runner.simulate(spec, n).ipc for n in (8, 16, 32, 64, 128)
            }
        trained = leave_one_out_errors(curves, anchor_size=16, target_size=128)
        trained_avg = sum(trained.values()) / len(trained)

        fig4 = figure4_strong_accuracy(128, runner=runner)
        scale_model_avg = fig4.mean_error("scale-model")
        assert trained_avg > scale_model_avg

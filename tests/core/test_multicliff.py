"""Multi-cliff predictor tests (the paper's future-work extension)."""

import pytest

from repro.core.model import ScaleModelPredictor
from repro.core.multicliff import MultiCliffPredictor, find_all_cliffs
from repro.core.profile import ScaleModelProfile
from repro.exceptions import PredictionError
from repro.mrc.curve import MissRateCurve
from repro.units import MB

PER_SM = 34 * MB / 128


def curve(mpki):
    caps = tuple(int(PER_SM * 8 * 2**i) for i in range(len(mpki)))
    return MissRateCurve("t", caps, tuple(mpki))


def profile(mpki, ipc8=100.0, ipc16=190.0, f_mem=0.5):
    return ScaleModelProfile(
        "t", (8, 16), (ipc8, ipc16), f_mem=f_mem, curve=curve(mpki)
    )


class TestFindAllCliffs:
    def test_two_cliffs(self):
        cliffs = find_all_cliffs(curve([8.0, 3.0, 3.0, 1.0, 1.0]))
        assert [c.step_index for c in cliffs] == [0, 2]
        assert cliffs[0].mpki_drop == pytest.approx(5.0)
        assert cliffs[1].mpki_drop == pytest.approx(2.0)

    def test_no_cliffs(self):
        assert find_all_cliffs(curve([5.0, 4.0, 3.5, 3.0, 2.8])) == []

    def test_threshold_validation(self):
        with pytest.raises(PredictionError):
            find_all_cliffs(curve([2.0, 1.0]), threshold=0.5)


class TestAgreementWithSingleCliff:
    def test_no_cliff_matches_eq2_when_c_is_1(self):
        prof = profile([3.0, 3.0, 3.0, 3.0, 3.0], ipc16=200.0)
        multi, __ = MultiCliffPredictor(prof).predict(128)
        single = ScaleModelPredictor(prof).predict(128).ipc
        assert multi == pytest.approx(single)

    def test_no_cliff_compounds_correction_per_doubling(self):
        """The walker applies C per doubling (C^3 over 16 -> 128); the
        paper's Eq. 2 applies it once.  Both agree at C = 1."""
        prof = profile([3.0] * 5)  # C = 0.95
        multi, __ = MultiCliffPredictor(prof).predict(128)
        c = prof.correction_factor()
        assert multi == pytest.approx(190.0 * (2 * c) ** 3)
        single = ScaleModelPredictor(prof).predict(128).ipc
        assert multi == pytest.approx(single * c * c)

    def test_single_cliff_matches_eq3(self):
        # Cliff between 17 MB (64 SMs) and 34 MB (128 SMs).
        prof = profile([2.1, 2.1, 2.1, 2.1, 0.2])
        multi, log = MultiCliffPredictor(prof).predict(128)
        single = ScaleModelPredictor(prof).predict(128).ipc
        # Single-cliff chain: x2C per smooth step, then the cliff relief.
        # Eq. 3 applies T/L (no C on the smooth part), so the two differ
        # by C^2; both are exact when C = 1.
        prof_c1 = profile([2.1, 2.1, 2.1, 2.1, 0.2], ipc16=200.0)
        multi_c1, __ = MultiCliffPredictor(prof_c1).predict(128)
        single_c1 = ScaleModelPredictor(prof_c1).predict(128).ipc
        assert multi_c1 == pytest.approx(single_c1)
        assert any("cliff" in line for line in log)

    def test_post_cliff_chain_matches_eq4_when_c_is_1(self):
        prof = profile([2.1, 2.1, 2.1, 0.2, 0.2], ipc16=200.0)
        multi, __ = MultiCliffPredictor(prof).predict(128)
        single = ScaleModelPredictor(prof).predict(128).ipc
        assert multi == pytest.approx(single)


class TestTwoCliffs:
    def test_each_cliff_relieves_its_share(self):
        # Drops: 8->4 (w=2/3) at step 1 and 4->2 (w=1/3) at step 3.
        prof = profile([8.0, 8.0, 4.0, 4.0, 1.9], ipc16=200.0, f_mem=0.6)
        predictor = MultiCliffPredictor(prof, threshold=1.9)
        assert len(predictor.cliffs) == 2
        ipc, log = predictor.predict(128)
        w1 = 4.0 / 6.1
        w2 = 2.1 / 6.1
        expected = (
            200.0
            * 2.0 / (1 - 0.6 * w1)   # 16 -> 32: first cliff
            * 2.0                     # 32 -> 64: smooth (C = 1)
            * 2.0 / (1 - 0.6 * w2)   # 64 -> 128: second cliff
        )
        assert ipc == pytest.approx(expected)
        assert sum("cliff" in line for line in log) == 2

    def test_shares_sum_to_one(self):
        prof = profile([8.0, 8.0, 4.0, 4.0, 1.9], f_mem=0.6)
        predictor = MultiCliffPredictor(prof, threshold=1.9)
        total = sum(predictor.stall_share(c) for c in predictor.cliffs)
        assert total == pytest.approx(1.0)


class TestValidation:
    def test_requires_curve(self):
        prof = ScaleModelProfile("t", (8, 16), (100.0, 190.0), f_mem=0.5)
        with pytest.raises(PredictionError):
            MultiCliffPredictor(prof)

    def test_requires_f_mem_at_cliffs(self):
        prof = ScaleModelProfile(
            "t", (8, 16), (100.0, 190.0), f_mem=None,
            curve=curve([2.1, 2.1, 2.1, 2.1, 0.2]),
        )
        with pytest.raises(PredictionError, match="f_mem"):
            MultiCliffPredictor(prof).predict(128)

    def test_target_below_largest_model(self):
        prof = profile([3.0] * 5)
        with pytest.raises(PredictionError):
            MultiCliffPredictor(prof).predict(8)

    def test_unsampled_size(self):
        prof = profile([3.0] * 5)
        with pytest.raises(PredictionError):
            MultiCliffPredictor(prof).predict(100)

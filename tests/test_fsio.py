"""Durable-writer tests: atomicity, the fsync escape hatch, the EXDEV
fallback, and the chaos seams (``enospc`` / ``partial-write`` /
``slow-io``) every persistence module routes through.

The EXDEV fallback is exercised with a monkeypatched ``os.replace`` so
the cross-filesystem path runs on single-filesystem CI machines too.
"""

import errno
import os

import pytest

from repro import fsio
from repro.analysis.faults import FAULT_INJECT_ENV


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "f.json")
        fsio.atomic_write_text(path, "one")
        assert open(path).read() == "one"
        fsio.atomic_write_text(path, "two")
        assert open(path).read() == "two"
        assert not os.path.exists(path + ".tmp")

    def test_fsync_paths_run_when_enabled(self, tmp_path, monkeypatch):
        monkeypatch.delenv(fsio.NO_FSYNC_ENV, raising=False)
        assert fsio.fsync_enabled()
        path = str(tmp_path / "f.json")
        fsio.atomic_write_text(path, "durable")
        fsio.append_text(path, " more")
        assert open(path).read() == "durable more"

    def test_no_fsync_env_disables_syncs(self, monkeypatch):
        monkeypatch.setenv(fsio.NO_FSYNC_ENV, "1")
        assert not fsio.fsync_enabled()

    def test_fsync_dir_tolerates_missing_directory(self, monkeypatch, tmp_path):
        monkeypatch.delenv(fsio.NO_FSYNC_ENV, raising=False)
        fsio.fsync_dir(str(tmp_path / "does-not-exist"))  # must not raise


class TestAppend:
    def test_appends_and_creates(self, tmp_path):
        path = str(tmp_path / "shard.jsonl")
        fsio.append_text(path, "a\n")
        fsio.append_text(path, "b\n")
        assert open(path).read() == "a\nb\n"


class TestReplaceFile:
    def test_same_filesystem_rename(self, tmp_path):
        src, dst = tmp_path / "src", tmp_path / "dst"
        src.write_text("data")
        fsio.replace_file(str(src), str(dst))
        assert dst.read_text() == "data"
        assert not src.exists()

    def test_exdev_falls_back_to_copy_plus_unlink(self, tmp_path, monkeypatch):
        src, dst = tmp_path / "src", tmp_path / "dst"
        src.write_text("data")

        def cross_device(a, b):
            raise OSError(errno.EXDEV, "Invalid cross-device link")

        monkeypatch.setattr(fsio.os, "replace", cross_device)
        fsio.replace_file(str(src), str(dst))
        assert dst.read_text() == "data"
        assert not src.exists()

    def test_other_oserror_propagates_untouched(self, tmp_path, monkeypatch):
        src = tmp_path / "src"
        src.write_text("data")

        def denied(a, b):
            raise OSError(errno.EACCES, "Permission denied")

        monkeypatch.setattr(fsio.os, "replace", denied)
        with pytest.raises(OSError) as err:
            fsio.replace_file(str(src), str(tmp_path / "dst"))
        assert err.value.errno == errno.EACCES
        assert src.exists()  # nothing was copied or deleted


class TestInjectedIoFaults:
    """The ``REPRO_FAULT_INJECT`` io grammar at the fsio layer itself."""

    def test_enospc_fires_before_any_byte(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "enospc:store:1")
        path = str(tmp_path / "f.json")
        with pytest.raises(OSError) as err:
            fsio.atomic_write_text(path, "x", op="store")
        assert err.value.errno == errno.ENOSPC
        assert not os.path.exists(path)
        assert not os.path.exists(path + ".tmp")
        # Budget of 1: the disk "recovered", the next write lands.
        fsio.atomic_write_text(path, "x", op="store")
        assert open(path).read() == "x"

    def test_partial_write_atomic_preserves_old_content(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULT_INJECT_ENV, "partial-write:store:1")
        path = str(tmp_path / "f.json")
        fsio.atomic_write_text(path, "precious old content")
        with pytest.raises(OSError) as err:
            fsio.atomic_write_text(path, "replacement", op="store")
        assert err.value.errno == errno.ENOSPC
        # The rename never happened: the final name still holds the old
        # bytes; the torn prefix only ever existed under the tmp name.
        assert open(path).read() == "precious old content"
        assert open(path + ".tmp").read() == "replacement"[: len("replacement") // 2]

    def test_partial_write_append_leaves_truncated_suffix(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULT_INJECT_ENV, "partial-write:store:1")
        path = str(tmp_path / "shard.jsonl")
        fsio.append_text(path, "complete line\n")
        with pytest.raises(OSError):
            fsio.append_text(path, "0123456789\n", op="store")
        # Exactly the torn-record shape the tolerant loaders must skip.
        assert open(path).read() == "complete line\n01234"

    def test_slow_io_sleeps_then_writes_normally(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "slow-io:store:0.001")
        path = str(tmp_path / "f.json")
        fsio.atomic_write_text(path, "slow but fine", op="store")
        fsio.append_text(path, "!", op="store")
        assert open(path).read() == "slow but fine!"

    def test_unlabelled_write_ignores_armed_plan(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "enospc:store")
        path = str(tmp_path / "f.json")
        fsio.atomic_write_text(path, "no op label")  # op=None: never injected
        assert open(path).read() == "no op label"

    def test_unrelated_seam_is_untouched(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "enospc:checkpoint")
        path = str(tmp_path / "shard.jsonl")
        fsio.append_text(path, "store seam\n", op="store")
        assert open(path).read() == "store seam\n"

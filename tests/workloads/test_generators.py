"""Trace-generator family tests."""

import numpy as np
import pytest

from repro.exceptions import WorkloadError
from repro.memory_regions import BYPASS_BASE
from repro.workloads import STRONG_SCALING, WEAK_SCALING, build_trace
from repro.workloads.generators import MAX_CTAS, lines_for_mb
from repro.workloads.spec import BenchmarkSpec, KernelShape, ScalingBehavior


def spec_for(family, params, ctas=32, threads=128, footprint=4.0):
    return BenchmarkSpec(
        abbr="t", name="T", suite="S", footprint_mb=footprint, insns_m=1.0,
        kernels=(KernelShape(ctas, threads),),
        scaling=ScalingBehavior.LINEAR, family=family, params=params,
    )


class TestLinesForMb:
    def test_paper_unit(self):
        # At the default 1/8 miniaturization, 1 MB = 1024 simulated lines.
        assert lines_for_mb(1.0, 0.125) == 1024
        assert lines_for_mb(34.0, 0.125) == 34816

    def test_positive_required(self):
        with pytest.raises(WorkloadError):
            lines_for_mb(0.0, 0.125)


class TestBuildTrace:
    def test_unknown_family_rejected(self):
        with pytest.raises(WorkloadError):
            build_trace(spec_for("wat", {}))

    def test_work_scale_positive(self):
        with pytest.raises(WorkloadError):
            build_trace(spec_for("stream", {}), work_scale=0.0)

    def test_deterministic_across_builds(self):
        spec = spec_for("irregular", {"apw": 8, "sigma": 0.5})
        a = build_trace(spec, seed=3).kernels[0].build_cta(5)
        b = build_trace(spec, seed=3).kernels[0].build_cta(5)
        assert a.warps[0].lines == b.warps[0].lines
        assert a.warps[0].start_offset == b.warps[0].start_offset

    def test_seed_changes_trace(self):
        spec = spec_for("irregular", {"apw": 8})
        a = build_trace(spec, seed=0).kernels[0].build_cta(5)
        b = build_trace(spec, seed=1).kernels[0].build_cta(5)
        assert a.warps[0].lines != b.warps[0].lines

    def test_cta_clamp(self):
        spec = spec_for("stream", {"apw": 2}, ctas=5000)
        trace = build_trace(spec, work_scale=4.0)
        assert trace.kernels[0].num_ctas == MAX_CTAS

    def test_metadata(self):
        trace = build_trace(STRONG_SCALING["dct"])
        assert trace.metadata["capacity_scale"] == 0.125
        assert "warm_region" in trace.metadata


class TestSweepFamily:
    def test_hot_lines_within_working_set(self):
        spec = spec_for("sweep", {"hot_mb": 2.0, "apw": 8})
        cta = build_trace(spec).kernels[0].build_cta(0)
        hot_lines = lines_for_mb(2.0, 0.125)
        for warp in cta.warps:
            assert max(warp.lines) < hot_lines

    def test_l1_reuse_repeats_lines(self):
        spec = spec_for("sweep", {"hot_mb": 2.0, "apw": 8, "l1_reuse": 2})
        warp = build_trace(spec).kernels[0].build_cta(0).warps[0]
        assert warp.lines[0] == warp.lines[1]
        assert warp.lines[2] == warp.lines[3]

    def test_cold_fraction_goes_to_bypass_region(self):
        spec = spec_for("sweep", {"hot_mb": 2.0, "apw": 16, "cold_frac": 0.5})
        trace = build_trace(spec)
        lines = [l for k in trace.kernels for c in k.iter_ctas()
                 for w in c.warps for l in w.lines]
        cold = [l for l in lines if l >= BYPASS_BASE]
        assert 0.3 < len(cold) / len(lines) < 0.7

    def test_warm_region_covers_hot_set(self):
        spec = spec_for("sweep", {"hot_mb": 2.0, "apw": 8})
        trace = build_trace(spec)
        base, count = trace.metadata["warm_region"]
        assert base == 0
        assert count == lines_for_mb(2.0, 0.125)


class TestIrregularFamily:
    def test_sigma_varies_cta_work(self):
        spec = spec_for("irregular", {"apw": 16, "sigma": 1.0})
        trace = build_trace(spec)
        lengths = {
            trace.kernels[0].build_cta(c).warps[0].num_accesses
            for c in range(20)
        }
        assert len(lengths) > 3  # strongly varying CTA work

    def test_sigma_growth_under_weak_scaling(self):
        spec = spec_for("irregular", {"apw": 16, "sigma": 0.4,
                                      "sigma_growth": 0.5})
        small = build_trace(spec, work_scale=1.0)
        big = build_trace(spec, work_scale=16.0)

        def spread(trace):
            lengths = [trace.kernels[0].build_cta(c).warps[0].num_accesses
                       for c in range(trace.kernels[0].num_ctas)]
            return np.std(lengths) / np.mean(lengths)

        assert spread(big) > spread(small)


class TestTiledFamily:
    def test_folded_compute(self):
        spec = spec_for("tiled", {"apw": 4, "cpa": 10.0, "reps": 3})
        warp = build_trace(spec).kernels[0].build_cta(0).warps[0]
        # folded cpa = 3*(10+1)-1 = 32 per access on average.
        mean_compute = sum(warp.compute) / len(warp.compute)
        assert mean_compute == pytest.approx(32, rel=0.3)
        assert warp.num_accesses == 4


class TestChaseFamily:
    def test_walks_touch_all_levels(self):
        spec = spec_for("chase", {"apw": 8, "levels": 4}, footprint=2.0)
        warp = build_trace(spec).kernels[0].build_cta(0).warps[0]
        assert warp.num_accesses == 8  # 2 walks x 4 levels


class TestHotColdFamily:
    def test_hot_scaled_grows_with_work(self):
        params = {"apw": 8, "hot_lines": 100, "hot_frac": 1.0,
                  "zipf_exp": 0.0, "hot_scaled": 1.0}
        spec = spec_for("hotcold", params)
        big = build_trace(spec, work_scale=8.0)
        lines = [l for w in big.kernels[0].build_cta(0).warps for l in w.lines]
        assert max(lines) >= 100  # beyond the unscaled region

    def test_hot_fixed_without_flag(self):
        params = {"apw": 8, "hot_lines": 100, "hot_frac": 1.0, "zipf_exp": 0.0}
        spec = spec_for("hotcold", params)
        big = build_trace(spec, work_scale=8.0)
        lines = [l for w in big.kernels[0].build_cta(0).warps for l in w.lines]
        assert max(lines) < 100


class TestWeakScaling:
    @pytest.mark.parametrize("abbr", ["va", "bp", "btree"])
    def test_accesses_scale_with_work(self, abbr):
        spec = WEAK_SCALING[abbr]
        small = build_trace(spec, work_scale=1.0).count_accesses()
        large = build_trace(spec, work_scale=8.0).count_accesses()
        assert large == pytest.approx(8 * small, rel=0.25)

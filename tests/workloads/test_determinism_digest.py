"""Cross-process trace determinism for every generator family.

``build_cta(cta_id)`` must return the same trace for the same
``(spec, work_scale, capacity_scale, seed)`` no matter which process
builds it — the cache keys, the golden ledger and the zoo spec digests
all assume it.  These tests hash one representative workload per family
(plus a grammar-generated composite) in-process twice, then recompute
the digests in a fresh interpreter and demand bit equality.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.trace import trace_digest
from repro.workloads import build_trace, get_benchmark
from repro.workloads.generators import _FAMILIES
from repro.zoo import Prim, Seq, realize

#: One catalog representative per generator family.
FAMILY_REPS = {
    "sweep": ("va", False),
    "hotcold": ("bfs", False),
    "stream": ("pf", False),
    "tiled": ("gemm", False),
    "chase": ("btree", False),
    "irregular": ("bs", True),
}

WORK_SCALE = 0.05
SEED = 3


def _specs():
    specs = {
        family: get_benchmark(abbr, weak=weak)
        for family, (abbr, weak) in FAMILY_REPS.items()
    }
    specs["generated"] = realize(
        Seq((Prim("sweep", {"hot_mb": 1.0}), Prim("frontier", {"fp_mb": 2.0}))),
        seed=5, intent="sub-linear", ctas_per_phase=24,
    )
    return specs


def _digests():
    return {
        family: trace_digest(build_trace(spec, work_scale=WORK_SCALE, seed=SEED))
        for family, spec in _specs().items()
    }


def test_reps_cover_every_family():
    assert set(_specs()) == set(_FAMILIES)


def test_digests_stable_within_process():
    assert _digests() == _digests()


def test_digests_stable_across_processes():
    expected = _digests()
    helper = (
        "import json, sys; "
        "sys.path.insert(0, sys.argv[1]); "
        "from tests.workloads import test_determinism_digest as m; "
        "print(json.dumps(m._digests()))"
    )
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(root, "src"), env.get("PYTHONPATH")) if p
    )
    result = subprocess.run(
        [sys.executable, "-c", helper, root],
        capture_output=True, text=True, env=env, check=True,
    )
    assert json.loads(result.stdout) == expected


def test_different_seed_changes_some_digest():
    spec = get_benchmark("bfs")
    base = trace_digest(build_trace(spec, work_scale=WORK_SCALE, seed=SEED))
    other = trace_digest(build_trace(spec, work_scale=WORK_SCALE, seed=SEED + 1))
    assert base != other

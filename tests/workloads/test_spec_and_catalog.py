"""Benchmark-spec and catalog tests."""

import pytest

from repro.exceptions import WorkloadError
from repro.workloads import (
    MCM_WEAK_BENCHMARKS,
    STRONG_SCALING,
    WEAK_SCALING,
    ScalingBehavior,
    get_benchmark,
    strong_scaling_names,
    weak_scaling_names,
)
from repro.workloads.spec import BenchmarkSpec, KernelShape


class TestKernelShape:
    def test_warps_per_cta(self):
        assert KernelShape(10, 256).warps_per_cta == 8
        assert KernelShape(10, 1024).warps_per_cta == 32

    def test_validation(self):
        with pytest.raises(WorkloadError):
            KernelShape(0)
        with pytest.raises(WorkloadError):
            KernelShape(10, 16)  # below one warp


class TestBenchmarkSpec:
    def _spec(self, **overrides):
        defaults = dict(
            abbr="x", name="X", suite="S", footprint_mb=10.0, insns_m=1.0,
            kernels=(KernelShape(16),), scaling=ScalingBehavior.LINEAR,
            family="stream",
        )
        defaults.update(overrides)
        return BenchmarkSpec(**defaults)

    def test_num_ctas_sums_kernels(self):
        spec = self._spec(kernels=(KernelShape(16), KernelShape(8)))
        assert spec.num_ctas == 24

    def test_param_lookup_with_default(self):
        spec = self._spec(params={"cpa": 5.0})
        assert spec.param("cpa", 1.0) == 5.0
        assert spec.param("missing", 7.0) == 7.0

    def test_weak_scalable_requires_class(self):
        with pytest.raises(WorkloadError):
            self._spec(weak_scalable=True)

    def test_mcm_requires_weak(self):
        with pytest.raises(WorkloadError):
            self._spec(mcm=True)

    def test_footprint_positive(self):
        with pytest.raises(WorkloadError):
            self._spec(footprint_mb=0.0)


class TestCatalog:
    def test_twenty_one_strong_benchmarks(self):
        assert len(STRONG_SCALING) == 21
        assert len(strong_scaling_names()) == 21

    def test_table2_order_starts_with_dct(self):
        names = strong_scaling_names()
        assert names[0] == "dct"
        assert names[-1] == "bs"

    def test_six_weak_benchmarks(self):
        assert len(WEAK_SCALING) == 6
        assert set(weak_scaling_names()) == {"bfs", "bs", "btree", "as", "bp", "va"}

    def test_weak_benchmarks_flagged(self):
        for abbr in weak_scaling_names():
            assert WEAK_SCALING[abbr].weak_scalable
            assert WEAK_SCALING[abbr].weak_scaling is not None

    def test_mcm_subset(self):
        for abbr in MCM_WEAK_BENCHMARKS:
            assert WEAK_SCALING[abbr].mcm

    def test_get_benchmark(self):
        assert get_benchmark("dct").abbr == "dct"
        assert get_benchmark("bfs", weak=True).footprint_mb < 5
        with pytest.raises(WorkloadError):
            get_benchmark("nope")
        with pytest.raises(WorkloadError):
            get_benchmark("dct", weak=True)

    def test_families_are_known(self):
        from repro.workloads.generators import _FAMILIES

        for spec in list(STRONG_SCALING.values()) + list(WEAK_SCALING.values()):
            assert spec.family in _FAMILIES, spec.abbr

    def test_no_duplicate_trace_shapes_among_strong(self):
        """Benchmarks must not be exact clones of each other."""
        signatures = {}
        for abbr, spec in STRONG_SCALING.items():
            sig = (
                spec.family,
                tuple((k.num_ctas, k.threads_per_cta) for k in spec.kernels),
                tuple(sorted(spec.params.items())),
            )
            assert sig not in signatures, (abbr, signatures.get(sig))
            signatures[sig] = abbr

"""Trace data-type tests."""

import pytest

from repro.exceptions import TraceError
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace


def warp(n=3, compute=2, tail=0, offset=0.0):
    return WarpTrace([compute] * n, list(range(n)), tail_compute=tail,
                     start_offset=offset)


class TestWarpTrace:
    def test_instruction_count(self):
        w = WarpTrace([2, 3], [10, 20], tail_compute=4)
        assert w.warp_instructions == 2 + 3 + 2 + 4
        assert w.num_accesses == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            WarpTrace([1, 2], [10])

    def test_negative_tail_rejected(self):
        with pytest.raises(TraceError):
            WarpTrace([1], [1], tail_compute=-1)

    def test_negative_offset_rejected(self):
        with pytest.raises(TraceError):
            WarpTrace([1], [1], start_offset=-0.5)

    def test_empty_warp_allowed(self):
        w = WarpTrace([], [], tail_compute=5)
        assert w.warp_instructions == 5
        assert w.num_accesses == 0


class TestCTATrace:
    def test_aggregates(self):
        cta = CTATrace(0, [warp(3), warp(2)])
        assert cta.num_warps == 2
        assert cta.num_accesses == 5
        assert cta.warp_instructions == (3 * 3) + (2 * 3)

    def test_empty_cta_rejected(self):
        with pytest.raises(TraceError):
            CTATrace(0, [])


class TestKernelTrace:
    def _kernel(self, num_ctas=4):
        return KernelTrace("k", num_ctas, 64, lambda cid: CTATrace(cid, [warp()]))

    def test_warps_per_cta_from_threads(self):
        assert KernelTrace("k", 1, 256, lambda c: None).warps_per_cta == 8
        assert KernelTrace("k", 1, 32, lambda c: None).warps_per_cta == 1

    def test_iter_ctas(self):
        ids = [cta.cta_id for cta in self._kernel(3).iter_ctas()]
        assert ids == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(TraceError):
            KernelTrace("k", 0, 64, lambda c: None)
        with pytest.raises(TraceError):
            KernelTrace("k", 1, 0, lambda c: None)


class TestWorkloadTrace:
    def _workload(self):
        k = KernelTrace("k", 2, 64, lambda cid: CTATrace(cid, [warp(2), warp(2)]))
        return WorkloadTrace("w", [k, k])

    def test_counts(self):
        wl = self._workload()
        assert wl.num_ctas == 4
        assert wl.count_accesses() == 4 * 2 * 2
        # each warp: 2 accesses x (2 compute + 1) = 6 warp instructions
        assert wl.count_instructions(32) == 4 * 2 * 6 * 32

    def test_iter_accesses_order(self):
        wl = self._workload()
        lines = list(wl.iter_accesses())
        assert len(lines) == wl.count_accesses()
        assert lines[:2] == [0, 1]

    def test_empty_workload_rejected(self):
        with pytest.raises(TraceError):
            WorkloadTrace("w", [])

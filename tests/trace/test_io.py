"""Trace serialization round-trip tests."""

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.gpu import GPUConfig, simulate
from repro.trace.io import save_trace, load_trace
from repro.workloads import WEAK_SCALING, build_trace


@pytest.fixture
def trace_path(tmp_path):
    return str(tmp_path / "trace.npz")


@pytest.fixture
def workload():
    return build_trace(WEAK_SCALING["va"])


class TestRoundTrip:
    def test_structure_preserved(self, workload, trace_path):
        save_trace(workload, trace_path)
        loaded = load_trace(trace_path)
        assert loaded.name == workload.name
        assert len(loaded.kernels) == len(workload.kernels)
        assert loaded.num_ctas == workload.num_ctas
        assert loaded.metadata["warm_region"] == workload.metadata["warm_region"]

    def test_every_warp_identical(self, workload, trace_path):
        save_trace(workload, trace_path)
        loaded = load_trace(trace_path)
        for k_orig, k_load in zip(workload.kernels, loaded.kernels):
            for cta_id in (0, k_orig.num_ctas // 2, k_orig.num_ctas - 1):
                orig = k_orig.build_cta(cta_id)
                got = k_load.build_cta(cta_id)
                assert len(got.warps) == len(orig.warps)
                for w_orig, w_got in zip(orig.warps, got.warps):
                    assert w_got.lines == w_orig.lines
                    assert w_got.compute == w_orig.compute
                    assert w_got.tail_compute == w_orig.tail_compute
                    assert w_got.start_offset == w_orig.start_offset

    def test_simulation_identical_after_reload(self, workload, trace_path):
        save_trace(workload, trace_path)
        cfg = GPUConfig.paper_system(8)
        direct = simulate(cfg, build_trace(WEAK_SCALING["va"],
                                           capacity_scale=cfg.capacity_scale))
        # Save/load at the same capacity scale for a fair comparison.
        save_trace(build_trace(WEAK_SCALING["va"],
                               capacity_scale=cfg.capacity_scale), trace_path)
        replay = simulate(cfg, load_trace(trace_path))
        assert replay.cycles == direct.cycles
        assert replay.llc_misses == direct.llc_misses

    def test_version_check(self, workload, trace_path, tmp_path):
        import json
        save_trace(workload, trace_path)
        data = dict(np.load(trace_path))
        header = json.loads(bytes(data["header"].tobytes()).decode())
        header["version"] = 99
        data["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        bad = str(tmp_path / "bad.npz")
        np.savez_compressed(bad, **data)
        with pytest.raises(TraceError):
            load_trace(bad)

    def test_multi_kernel_bases(self, trace_path):
        from repro.workloads import STRONG_SCALING
        workload = build_trace(STRONG_SCALING["gr"])  # four kernels
        save_trace(workload, trace_path)
        loaded = load_trace(trace_path)
        # CTA 0 of kernel 2 must differ from CTA 0 of kernel 0.
        a = loaded.kernels[0].build_cta(0).warps[0].lines
        b = loaded.kernels[2].build_cta(0).warps[0].lines
        orig_a = workload.kernels[0].build_cta(0).warps[0].lines
        orig_b = workload.kernels[2].build_cta(0).warps[0].lines
        assert a == orig_a and b == orig_b

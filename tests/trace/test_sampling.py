"""Sieve-style kernel sampling tests."""

import pytest

from repro.exceptions import TraceError
from repro.trace.kernel import CTATrace, KernelTrace, WarpTrace, WorkloadTrace
from repro.trace.sampling import kernel_signature, sieve_sample


def make_kernel(name, num_ctas, accesses, compute):
    def build(cta_id):
        return CTATrace(cta_id, [WarpTrace([compute] * accesses,
                                           list(range(accesses)))])
    return KernelTrace(name, num_ctas, 32, build)


def workload_with(kernels):
    return WorkloadTrace("wl", kernels)


class TestSignatures:
    def test_signature_counts(self):
        sig = kernel_signature(0, make_kernel("k", 4, 5, 3))
        assert sig.accesses == 4 * 5
        assert sig.warp_instructions == 4 * 5 * 4
        assert sig.access_density == pytest.approx(0.25)

    def test_feature_orders_by_work(self):
        small = kernel_signature(0, make_kernel("s", 2, 4, 3))
        big = kernel_signature(1, make_kernel("b", 64, 4, 3))
        assert big.feature() > small.feature()


class TestSievePlan:
    def _workload(self):
        return workload_with([
            make_kernel("tiny-a", 2, 4, 1),
            make_kernel("tiny-b", 2, 4, 1),
            make_kernel("mid", 16, 8, 4),
            make_kernel("huge", 128, 16, 8),
        ])

    def test_strata_cover_all_kernels(self):
        plan = sieve_sample(self._workload(), max_strata=3)
        covered = sorted(i for s in plan.strata for i in s)
        assert covered == [0, 1, 2, 3]
        assert len(plan.representatives) == len(plan.strata) <= 3

    def test_weights_sum_to_one(self):
        plan = sieve_sample(self._workload(), max_strata=3)
        assert sum(plan.weights) == pytest.approx(1.0)

    def test_reduced_workload_keeps_representatives_only(self):
        plan = sieve_sample(self._workload(), max_strata=2)
        reduced = plan.reduced_workload()
        assert len(reduced.kernels) == len(plan.representatives)
        assert reduced.metadata["sieve"] is True

    def test_single_stratum_picks_biggest(self):
        plan = sieve_sample(self._workload(), max_strata=1)
        assert len(plan.representatives) == 1
        rep = plan.signatures[plan.representatives[0]]
        assert rep.name.startswith("huge")

    def test_reduction_factor(self):
        plan = sieve_sample(self._workload(), max_strata=1)
        assert plan.reduction_factor > 1.0

    def test_estimate_cycles_scales_by_work(self):
        # Two identical kernels in one stratum: the representative's
        # cycles count double.
        wl = workload_with([
            make_kernel("a", 8, 4, 2),
            make_kernel("b", 8, 4, 2),
        ])
        plan = sieve_sample(wl, max_strata=1)
        rep = plan.representatives[0]
        assert plan.estimate_cycles({rep: 100.0}) == pytest.approx(200.0)

    def test_estimate_requires_all_representatives(self):
        plan = sieve_sample(self._workload(), max_strata=2)
        with pytest.raises(TraceError):
            plan.estimate_cycles({})

    def test_exact_when_every_kernel_is_a_stratum(self):
        wl = self._workload()
        plan = sieve_sample(wl, max_strata=10)
        assert len(plan.strata) == 4
        cycles = {rep: 10.0 * (i + 1)
                  for i, rep in enumerate(plan.representatives)}
        assert plan.estimate_cycles(cycles) == pytest.approx(sum(cycles.values()))

    def test_validation(self):
        with pytest.raises(TraceError):
            sieve_sample(self._workload(), max_strata=0)


class TestSieveOnRealWorkload:
    def test_unet_multi_kernel_plan(self):
        from repro.workloads import STRONG_SCALING, build_trace

        trace = build_trace(STRONG_SCALING["unet"])
        plan = sieve_sample(trace, max_strata=3)
        assert 1 <= len(plan.representatives) <= 3
        assert plan.reduction_factor > 1.0
        assert sum(plan.weights) == pytest.approx(1.0)

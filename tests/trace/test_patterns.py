"""Address-pattern generator tests, including distribution properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import TraceError
from repro.trace import patterns


def rng(seed=0):
    return np.random.default_rng(seed)


class TestSequential:
    def test_basic(self):
        out = patterns.sequential(100, 5)
        assert out.tolist() == [100, 101, 102, 103, 104]

    def test_stride(self):
        assert patterns.strided(0, 3, 4).tolist() == [0, 4, 8]

    def test_validation(self):
        with pytest.raises(TraceError):
            patterns.sequential(0, 0)
        with pytest.raises(TraceError):
            patterns.sequential(0, 5, stride=0)


class TestCyclicSweep:
    def test_wraps_at_working_set(self):
        out = patterns.cyclic_sweep(10, ws_lines=4, count=6, offset=2)
        assert out.tolist() == [12, 13, 10, 11, 12, 13]

    def test_covers_every_line(self):
        out = patterns.cyclic_sweep(0, 8, 8)
        assert sorted(out.tolist()) == list(range(8))

    @given(
        ws=st.integers(min_value=1, max_value=100),
        count=st.integers(min_value=1, max_value=500),
        offset=st.integers(min_value=0, max_value=1000),
    )
    def test_always_within_working_set(self, ws, count, offset):
        out = patterns.cyclic_sweep(0, ws, count, offset)
        assert out.min() >= 0
        assert out.max() < ws


class TestUniformRandom:
    def test_within_bounds_and_deterministic(self):
        a = patterns.uniform_random(50, 100, 1000, rng(7))
        b = patterns.uniform_random(50, 100, 1000, rng(7))
        assert (a == b).all()
        assert a.min() >= 50 and a.max() < 150

    def test_covers_most_lines(self):
        out = patterns.uniform_random(0, 20, 2000, rng(1))
        assert len(np.unique(out)) == 20


class TestZipf:
    def test_skew_orders_popularity(self):
        out = patterns.zipf(0, 50, 20000, rng(3), exponent=1.2)
        counts = np.bincount(out, minlength=50)
        # Rank 0 must be much hotter than rank 40.
        assert counts[0] > 5 * max(1, counts[40])

    def test_validation(self):
        with pytest.raises(TraceError):
            patterns.zipf(0, 10, 5, rng(), exponent=0.0)


class TestStencilRows:
    def test_touches_north_neighbour(self):
        out = patterns.stencil_rows(0, row_lines=4, num_rows=3, count=8,
                                    offset_row=1)
        # Pairs (cell, north) alternate: row 1 cells then row 0 cells.
        assert out[0] == 4  # row 1 col 0
        assert out[1] == 0  # row 0 col 0 (north)

    def test_row_zero_has_no_north(self):
        out = patterns.stencil_rows(0, 4, 3, 4, offset_row=0)
        assert out[1] == out[0]


class TestPointerChase:
    def test_every_walk_starts_at_root(self):
        out = patterns.pointer_chase_tree(1000, levels=3, fanout=4,
                                          walks=10, rng=rng(2))
        assert len(out) == 30
        roots = out[::3]
        assert (roots == 1000).all()

    def test_levels_are_disjoint_regions(self):
        out = patterns.pointer_chase_tree(0, levels=3, fanout=4, walks=50,
                                          rng=rng(2))
        level1 = out[1::3]
        level2 = out[2::3]
        assert level1.min() >= 1 and level1.max() <= 4
        assert level2.min() >= 5 and level2.max() <= 20


class TestHotCold:
    def test_mix_fraction(self):
        out = patterns.hot_cold(0, 10, 10_000, 1000, 5000, 0.5, rng(4))
        hot = np.count_nonzero(out < 10_000)
        assert 0.4 < hot / 5000 < 0.6

    def test_all_cold(self):
        out = patterns.hot_cold(0, 10, 10_000, 100, 50, 0.0, rng(4))
        assert (out >= 10_000).all()

    def test_validation(self):
        with pytest.raises(TraceError):
            patterns.hot_cold(0, 10, 100, 10, 10, 1.5, rng())


class TestInterleaveCompute:
    def test_mean_close_to_target(self):
        out = patterns.interleave_compute(5000, 12.0, rng(5))
        assert abs(out.mean() - 12.0) < 0.5
        assert (out >= 0).all()

    def test_no_jitter_exact(self):
        out = patterns.interleave_compute(10, 7.0, rng(5), jitter=0.0)
        assert (out == 7).all()

    def test_validation(self):
        with pytest.raises(TraceError):
            patterns.interleave_compute(0, 5.0, rng())
        with pytest.raises(TraceError):
            patterns.interleave_compute(5, -1.0, rng())

"""Tests for the generative workload zoo."""

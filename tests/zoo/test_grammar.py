"""Grammar: validation, serialization, realization determinism."""

import json

import pytest

from repro.exceptions import WorkloadError
from repro.workloads.generators import MAX_CTAS, build_trace
from repro.workloads.spec import BenchmarkSpec, KernelShape, ScalingBehavior
from repro.zoo import (
    Burst,
    Prim,
    Ramp,
    Repeat,
    Seq,
    expr_from_json,
    realize,
    spec_from_payload,
)


class TestPrimitiveValidation:
    def test_unknown_primitive_named(self):
        with pytest.raises(WorkloadError, match="unknown primitive"):
            Prim("gemmish")

    def test_unknown_parameter_named(self):
        with pytest.raises(WorkloadError, match="sweep.wat"):
            Prim("sweep", {"wat": 1.0})

    def test_empty_footprint_names_field(self):
        with pytest.raises(WorkloadError, match="frontier.fp_mb"):
            Prim("frontier", {"fp_mb": 0.0})

    def test_non_positive_zipf_names_field(self):
        with pytest.raises(WorkloadError, match="frontier.zipf_alpha"):
            Prim("frontier", {"zipf_alpha": -0.5})

    def test_fraction_bounds_named(self):
        with pytest.raises(WorkloadError, match="sweep.cold_frac"):
            Prim("sweep", {"cold_frac": 1.5})

    def test_empty_seq_rejected(self):
        with pytest.raises(WorkloadError, match="seq.children"):
            Seq(())

    def test_zero_length_repeat_rejected(self):
        with pytest.raises(WorkloadError, match="repeat.times"):
            Repeat(Prim("stream"), times=0)

    def test_degenerate_ramp_rejected(self):
        with pytest.raises(WorkloadError, match="ramp.steps"):
            Ramp(Prim("sweep"), steps=0, growth=2.0)
        with pytest.raises(WorkloadError, match="ramp.growth"):
            Ramp(Prim("sweep"), steps=2, growth=0.0)

    def test_burst_intensity_bounds(self):
        with pytest.raises(WorkloadError, match="burst.intensity"):
            Burst(Prim("stream"), intensity=1.2)

    def test_cta_count_over_clamp_named(self):
        with pytest.raises(WorkloadError, match="ctas_per_phase"):
            realize(Prim("stream"), seed=0, intent="linear",
                    ctas_per_phase=MAX_CTAS + 1)
        with pytest.raises(WorkloadError, match="ctas_per_phase"):
            realize(Prim("stream"), seed=0, intent="linear",
                    ctas_per_phase=0)

    def test_unknown_intent_rejected(self):
        with pytest.raises(WorkloadError, match="intent"):
            realize(Prim("stream"), seed=0, intent="cubic")


class TestComposition:
    def test_seq_concatenates_phases(self):
        expr = Seq((Prim("sweep"), Prim("stream"), Prim("tile")))
        families = [p.family for p in expr.phases()]
        assert families == ["sweep", "stream", "tiled"]

    def test_repeat_copies_phases(self):
        assert len(Repeat(Prim("chase"), times=3).phases()) == 3

    def test_ramp_grows_footprints(self):
        expr = Ramp(Prim("stream", {"fp_mb": 10.0}), steps=3, growth=2.0)
        footprints = [p.params["fp_mb"] for p in expr.phases()]
        assert footprints == [10.0, 20.0, 40.0]

    def test_burst_shrinks_lead_in(self):
        lockstep = Burst(Prim("stream"), intensity=1.0).phases()[0]
        half = Burst(Prim("stream"), intensity=0.5).phases()[0]
        assert lockstep.params["lead_in"] == 0
        assert 0 < half.params["lead_in"] < 900

    def test_param_renames_reach_the_generator(self):
        phase = Prim("frontier", {"zipf_alpha": 0.8}).phases()[0]
        assert phase.params["zipf_exp"] == 0.8
        assert "zipf_alpha" not in phase.params


class TestSerialization:
    EXPR = Burst(
        Seq((
            Prim("sweep", {"hot_mb": 6.0}),
            Ramp(Prim("frontier", {"sigma": 0.7}), steps=2, growth=1.5),
            Repeat(Prim("tile"), times=2),
        )),
        intensity=0.5,
    )

    def test_json_round_trip_preserves_phases(self):
        document = json.loads(json.dumps(self.EXPR.to_json()))
        assert expr_from_json(document).phases() == self.EXPR.phases()

    def test_malformed_document_rejected(self):
        with pytest.raises(WorkloadError, match="unknown op"):
            expr_from_json({"op": "quantum"})
        with pytest.raises(WorkloadError):
            expr_from_json("not an object")
        with pytest.raises(WorkloadError, match="seq.children"):
            expr_from_json({"op": "seq", "children": "nope"})


class TestRealize:
    def test_deterministic_in_expr_and_seed(self):
        a = realize(Prim("stream"), seed=7, intent="linear")
        b = realize(Prim("stream"), seed=7, intent="linear")
        assert a.abbr == b.abbr
        assert a == b

    def test_distinct_inputs_distinct_digests(self):
        base = realize(Prim("stream"), seed=7, intent="linear")
        assert realize(Prim("stream"), seed=8, intent="linear").digest != base.digest
        assert realize(Prim("stream", {"fp_mb": 65.0}), seed=7,
                       intent="linear").digest != base.digest
        assert realize(Prim("stream"), seed=7, intent="linear",
                       ctas_per_phase=100).digest != base.digest

    def test_one_kernel_per_phase(self):
        spec = realize(Seq((Prim("sweep"), Prim("stream"))), seed=1,
                       intent="super-linear", ctas_per_phase=96)
        assert len(spec.kernels) == 2
        assert len(spec.phases) == 2
        assert spec.family == "generated"
        assert spec.suite == "zoo"
        assert spec.scaling is ScalingBehavior.SUPER_LINEAR

    def test_payload_round_trip_is_bit_stable(self):
        spec = realize(
            Burst(Seq((Prim("sweep", {"hot_mb": 6.2}), Prim("chase"))), 0.4),
            seed=11, intent="sub-linear", ctas_per_phase=128,
        )
        restored = spec_from_payload(json.loads(json.dumps(spec.payload())))
        assert restored == spec
        assert restored.digest == spec.digest

    def test_malformed_payload_rejected(self):
        with pytest.raises(WorkloadError, match="malformed"):
            spec_from_payload({"grammar": {"op": "prim", "kind": "stream"}})


class TestGeneratedFamily:
    def test_generated_spec_builds_a_trace(self):
        spec = realize(
            Seq((Prim("sweep", {"hot_mb": 2.0}), Prim("stream", {"fp_mb": 4.0}))),
            seed=3, intent="super-linear", ctas_per_phase=4,
        )
        trace = build_trace(spec, work_scale=0.02, seed=0)
        assert len(trace.kernels) == 2
        cta = trace.kernels[0].build_cta(0)
        assert cta.warps
        assert any(len(w.lines) for w in cta.warps)

    def test_plain_spec_with_generated_family_rejected(self):
        spec = BenchmarkSpec(
            abbr="zz", name="zz", suite="zoo", footprint_mb=1.0, insns_m=0.0,
            kernels=(KernelShape(num_ctas=4),),
            scaling=ScalingBehavior.LINEAR, family="generated",
        )
        with pytest.raises(WorkloadError, match="phases"):
            build_trace(spec, work_scale=0.02, seed=0)

"""Sampler: stratification, determinism, validation."""

import pytest

from repro.exceptions import WorkloadError
from repro.zoo import REGIMES, sample_batch, sample_spec


class TestSampleSpec:
    def test_intent_matches_requested_regime(self):
        for regime in REGIMES:
            assert sample_spec(regime, seed=3).intent == regime

    def test_deterministic_across_calls(self):
        a = sample_spec("linear", seed=5, index=2)
        b = sample_spec("linear", seed=5, index=2)
        assert a == b
        assert a.digest == b.digest

    def test_seed_and_index_vary_the_draw(self):
        base = sample_spec("sub-linear", seed=5, index=0)
        assert sample_spec("sub-linear", seed=6, index=0).digest != base.digest
        assert sample_spec("sub-linear", seed=5, index=1).digest != base.digest

    def test_scale_rescales_ctas_only(self):
        big = sample_spec("linear", seed=4, scale=4.0)
        small = sample_spec("linear", seed=4, scale=1.0)
        assert big.kernels[0].num_ctas > small.kernels[0].num_ctas
        assert big.grammar == small.grammar

    def test_unknown_regime_rejected(self):
        with pytest.raises(WorkloadError, match="regime"):
            sample_spec("quadratic", seed=0)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(WorkloadError, match="scale"):
            sample_spec("linear", seed=0, scale=0.0)


class TestSampleBatch:
    def test_exact_stratification(self):
        batch = sample_batch(12, seed=9)
        for regime in REGIMES:
            assert sum(1 for s in batch if s.intent == regime) == 4

    def test_remainder_goes_to_earlier_regimes(self):
        batch = sample_batch(4, seed=9)
        assert [s.intent for s in batch] == [
            REGIMES[0], REGIMES[1], REGIMES[2], REGIMES[0],
        ]

    def test_batch_digests_are_reproducible(self):
        first = [s.digest for s in sample_batch(9, seed=7)]
        second = [s.digest for s in sample_batch(9, seed=7)]
        assert first == second

    def test_batch_digests_are_distinct(self):
        digests = [s.digest for s in sample_batch(12, seed=9)]
        assert len(set(digests)) == len(digests)

    def test_validation(self):
        with pytest.raises(WorkloadError, match="n:"):
            sample_batch(0, seed=1)
        with pytest.raises(WorkloadError, match="regimes"):
            sample_batch(3, seed=1, regimes=())

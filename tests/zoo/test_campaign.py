"""Campaign driver: artifact shape, confusion accounting, failure paths.

The driver logic is exercised against a fake runner with synthetic IPC
profiles — one per intended regime, each engineered to classify as its
own intent — so the tests pin the orchestration (stratified sampling,
classification wiring, confusion and failure accounting, artifact
validity) without paying for detailed simulations.
"""

import json

import pytest

from repro.exceptions import ReproError, SimulationError, WorkloadError
from repro.gpu.results import SimulationResult
from repro.mrc import MissRateCurve
from repro.zoo import (
    REGIMES,
    CampaignPlan,
    render_campaign,
    run_campaign,
    validate_campaign_artifact,
    zoo_bench_block,
)

MB = 2**20

#: Synthetic IPC-versus-size profiles, each measuring as its own intent:
#: proportional growth, a 3.25x cliff at 32, and early saturation.
_IPC = {
    "linear": {8: 80.0, 16: 160.0, 32: 320.0},
    "super-linear": {8: 80.0, 16: 160.0, 32: 520.0},
    "sub-linear": {8: 100.0, 16: 150.0, 32: 190.0},
}


class FakeRunner:
    def __init__(self, fail_intents=()):
        self.fail_intents = set(fail_intents)
        self.prefetched = 0
        self.flushed = False

    def prefetch(self, requests):
        self.prefetched = len(list(requests))
        return 0

    def simulate(self, spec, num_sms, work_scale=1.0, seed=0):
        if spec.intent in self.fail_intents:
            raise SimulationError(f"{spec.abbr}: injected failure")
        ipc = _IPC[spec.intent][num_sms]
        return SimulationResult(
            workload=spec.abbr,
            system=f"gpu{num_sms}",
            num_sms=num_sms,
            cycles=1000.0,
            thread_instructions=int(ipc * 1000),
            warp_instructions=int(ipc * 1000) // 32,
            memory_accesses=1000,
            memory_stall_fraction=0.4,
            wall_time_s=0.01,
        )

    def miss_rate_curve(self, spec, work_scale=1.0, method="stack", seed=0):
        return MissRateCurve(
            workload=spec.abbr,
            capacities_bytes=(int(2.125 * MB), int(4.25 * MB), int(8.5 * MB)),
            mpki=(20.0, 12.0, 2.0),
        )

    def flush(self):
        self.flushed = True


def run_fake_campaign(n=6, seed=9, **runner_kwargs):
    plan = CampaignPlan(n=n, seed=seed)
    return run_campaign(plan, FakeRunner(**runner_kwargs))


class TestPlanValidation:
    def test_degenerate_plans_rejected(self):
        with pytest.raises(WorkloadError, match="plan.n"):
            CampaignPlan(n=0)
        with pytest.raises(WorkloadError, match="plan.scales"):
            CampaignPlan(scales=(8,))
        with pytest.raises(WorkloadError, match="plan.target"):
            CampaignPlan(scales=(8, 16), target=16)
        with pytest.raises(WorkloadError, match="work_scale"):
            CampaignPlan(work_scale=0.0)

    def test_sizes_are_sorted_and_complete(self):
        plan = CampaignPlan(scales=(16, 8), target=32)
        assert plan.sizes == (8, 16, 32)


class TestRunCampaign:
    def test_artifact_is_schema_valid(self):
        artifact = run_fake_campaign()
        assert validate_campaign_artifact(artifact) == []
        assert validate_campaign_artifact(
            json.loads(json.dumps(artifact))
        ) == []

    def test_confusion_is_diagonal_for_faithful_profiles(self):
        artifact = run_fake_campaign()
        confusion = artifact["confusion"]
        for intended in REGIMES:
            for measured in REGIMES:
                expected = 2 if intended == measured else 0
                assert confusion[intended][measured] == expected
        assert artifact["accuracy"]["regime_match_rate"] == 1.0

    def test_per_regime_stats_cover_every_measured_regime(self):
        artifact = run_fake_campaign()
        assert sorted(artifact["regimes"]) == sorted(REGIMES)
        assert sum(b["count"] for b in artifact["regimes"].values()) == 6

    def test_payloads_reproduce_spec_digests(self):
        from repro.zoo import spec_from_payload

        artifact = run_fake_campaign()
        for record in artifact["workloads"]:
            assert spec_from_payload(record["payload"]).digest == \
                record["digest"]

    def test_failures_are_recorded_not_fatal(self):
        artifact = run_fake_campaign(fail_intents={"linear"})
        assert validate_campaign_artifact(artifact) == []
        assert len(artifact["failures"]) == 2
        assert all(f["intent"] == "linear" for f in artifact["failures"])
        assert len(artifact["workloads"]) == 4
        assert artifact["campaign"]["failed"] == 2
        # Intended coverage still counts the casualties.
        assert artifact["coverage"]["intended"]["linear"] == 2

    def test_total_loss_raises(self):
        with pytest.raises(ReproError, match="no usable workloads"):
            run_fake_campaign(fail_intents=set(REGIMES))

    def test_runner_lifecycle_used(self):
        plan = CampaignPlan(n=3, seed=1)
        runner = FakeRunner()
        run_campaign(plan, runner)
        # 3 specs x (3 sizes + 1 MRC) prefetched, then flushed.
        assert runner.prefetched == 12
        assert runner.flushed


class TestValidator:
    def test_tampered_kind_rejected(self):
        artifact = run_fake_campaign()
        artifact["kind"] = "repro-bench"
        assert any("kind" in p for p in validate_campaign_artifact(artifact))

    def test_missing_block_rejected(self):
        for block in ("workloads", "regimes", "confusion", "accuracy",
                      "campaign", "coverage", "plan"):
            artifact = run_fake_campaign()
            del artifact[block]
            assert validate_campaign_artifact(artifact) != []

    def test_inconsistent_confusion_counts_rejected(self):
        artifact = run_fake_campaign()
        artifact["confusion"]["linear"]["linear"] += 1
        problems = validate_campaign_artifact(artifact)
        assert any("confusion" in p and "sum" in p for p in problems)

    def test_unknown_measured_regime_rejected(self):
        artifact = run_fake_campaign()
        artifact["workloads"][0]["measured"] = "cubic"
        problems = validate_campaign_artifact(artifact)
        assert any("measured" in p for p in problems)


class TestBenchBridge:
    def test_bench_block_shape(self):
        artifact = run_fake_campaign()
        block = zoo_bench_block(artifact)
        assert block["workloads"] == 6
        assert block["regime_match_rate"] == 1.0
        assert sorted(block["per_regime"]) == sorted(REGIMES)
        for stats in block["per_regime"].values():
            assert set(stats) == {"mape_pct", "count"}

    def test_bench_block_validates_under_bench_schema(self):
        from tests.bench.test_schema import make_artifact
        from repro.bench import validate_artifact

        document = make_artifact(zoo=zoo_bench_block(run_fake_campaign()))
        assert validate_artifact(document) == []

    def test_invalid_artifact_refused(self):
        with pytest.raises(ReproError, match="invalid zoo artifact"):
            zoo_bench_block({"kind": "junk"})


class TestReport:
    def test_report_renders_key_sections(self):
        artifact = run_fake_campaign()
        text = render_campaign(artifact)
        assert "Prediction accuracy by measured regime" in text
        assert "Regime confusion" in text
        assert "Worst-predicted workloads" in text
        assert "APE distribution" in text
        for record in artifact["workloads"][:1]:
            assert record["abbr"] in text

    def test_report_refuses_invalid_artifact(self):
        with pytest.raises(ReproError, match="invalid zoo artifact"):
            render_campaign({"kind": "junk"})
